"""Power-state machines.

The paper (§2.4) observes that components "are either on (and at full
performance and power) or off, and the transitions can be expensive".
:class:`PowerStateMachine` captures exactly that: a set of named states
with power draws, and explicit transitions carrying a latency and an
energy cost.  Disk spin-up/spin-down and CPU C-state entry/exit are
instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PowerStateError


@dataclass(frozen=True)
class PowerState:
    """A named operating point with a steady-state power draw."""

    name: str
    power_watts: float

    def __post_init__(self) -> None:
        if self.power_watts < 0:
            raise PowerStateError(
                f"state {self.name!r}: power must be non-negative, "
                f"got {self.power_watts}")


@dataclass(frozen=True)
class Transition:
    """An allowed state change with its latency and energy cost.

    ``energy_joules`` is the total energy of the transition itself (e.g.
    a disk spin-up current spike), *in addition to* the steady-state power
    of the states on either side.
    """

    source: str
    target: str
    latency_seconds: float = 0.0
    energy_joules: float = 0.0

    def __post_init__(self) -> None:
        if self.latency_seconds < 0:
            raise PowerStateError(f"{self}: negative latency")
        if self.energy_joules < 0:
            raise PowerStateError(f"{self}: negative energy")


class PowerStateMachine:
    """States, transitions, and the bookkeeping for moving between them."""

    def __init__(self, states: list[PowerState], transitions: list[Transition],
                 initial: str) -> None:
        self._states = {s.name: s for s in states}
        if len(self._states) != len(states):
            raise PowerStateError("duplicate state names")
        if initial not in self._states:
            raise PowerStateError(f"unknown initial state {initial!r}")
        self._transitions: dict[tuple[str, str], Transition] = {}
        for t in transitions:
            if t.source not in self._states or t.target not in self._states:
                raise PowerStateError(f"transition {t} references unknown state")
            self._transitions[(t.source, t.target)] = t
        self._current = initial

    @property
    def current(self) -> str:
        """Name of the current state."""
        return self._current

    @property
    def power_watts(self) -> float:
        """Steady-state power of the current state."""
        return self._states[self._current].power_watts

    def state(self, name: str) -> PowerState:
        """Look up a state by name."""
        try:
            return self._states[name]
        except KeyError:
            raise PowerStateError(f"unknown state {name!r}") from None

    def can_transition(self, target: str) -> bool:
        """Whether a direct transition to ``target`` is defined."""
        return (self._current, target) in self._transitions

    def transition(self, target: str) -> Transition:
        """Move to ``target``; returns the transition (latency + energy).

        The caller is responsible for modeling the latency (e.g. by
        yielding a timeout) and charging the energy.
        """
        if target == self._current:
            return Transition(self._current, target, 0.0, 0.0)
        key = (self._current, target)
        if key not in self._transitions:
            raise PowerStateError(
                f"illegal transition {self._current!r} -> {target!r}")
        self._current = target
        return self._transitions[key]

    def states(self) -> list[PowerState]:
        """All states, sorted by name."""
        return [self._states[k] for k in sorted(self._states)]


def breakeven_idle_seconds(active_idle_watts: float, sleep_watts: float,
                           enter: Transition, exit_: Transition) -> float:
    """Minimum idle period for which sleeping saves energy (paper §4.2).

    Sleeping for ``T`` seconds costs the transition energies plus
    ``sleep_watts * T``; staying up costs ``active_idle_watts * T``.
    Returns the ``T`` at which they break even (including the transition
    latencies inside the idle window).
    """
    if active_idle_watts <= sleep_watts:
        return float("inf")
    latency = enter.latency_seconds + exit_.latency_seconds
    fixed = (enter.energy_joules + exit_.energy_joules
             - latency * sleep_watts)
    breakeven = fixed / (active_idle_watts - sleep_watts)
    # The window must at least fit the transitions themselves.
    return max(breakeven, latency)


@dataclass
class PowerBudget:
    """A provisioned power cap (rack / tray budgets, §2.2).

    Tracks commitments against a cap so configuration tools can refuse
    placements that would exceed provisioned power.
    """

    cap_watts: float
    committed_watts: float = 0.0
    commitments: dict[str, float] = field(default_factory=dict)

    def commit(self, name: str, watts: float) -> None:
        """Reserve ``watts`` for ``name``; raises if the cap is exceeded."""
        if watts < 0:
            raise PowerStateError(f"cannot commit negative power {watts}")
        if name in self.commitments:
            raise PowerStateError(f"{name!r} already committed")
        if self.committed_watts + watts > self.cap_watts + 1e-9:
            raise PowerStateError(
                f"power budget exceeded: {self.committed_watts + watts:.0f} W "
                f"> cap {self.cap_watts:.0f} W")
        self.commitments[name] = watts
        self.committed_watts += watts

    def release(self, name: str) -> None:
        """Return a commitment to the pool."""
        try:
            self.committed_watts -= self.commitments.pop(name)
        except KeyError:
            raise PowerStateError(f"no commitment named {name!r}") from None

    @property
    def headroom_watts(self) -> float:
        """Uncommitted power under the cap."""
        return self.cap_watts - self.committed_watts
