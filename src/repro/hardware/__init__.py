"""Hardware substrate: calibrated device power/performance models.

Every component the paper's experiments exercised — CPUs with DVFS,
DRAM, 15K-RPM SCSI disks, flash SSDs, RAID trays, power supplies — is
modeled as a :class:`~repro.hardware.device.Device` whose power draw is a
step function of its activity, integrated over simulated time by the
:class:`~repro.hardware.meter.EnergyMeter`.
"""

from repro.hardware.cpu import Cpu, CpuSpec
from repro.hardware.device import Device
from repro.hardware.disk import DiskSpec, HardDisk
from repro.hardware.memory import Dram, DramSpec
from repro.hardware.meter import EnergyMeter
from repro.hardware.power import PowerState, PowerStateMachine, Transition
from repro.hardware.proportionality import (
    IdealProportionalDevice,
    proportionality_index,
)
from repro.hardware.psu import BurdenModel, PsuSpec
from repro.hardware.raid import RaidArray, RaidLevel
from repro.hardware.server import Server
from repro.hardware.ssd import FlashSsd, SsdSpec

__all__ = [
    "BurdenModel",
    "Cpu",
    "CpuSpec",
    "Device",
    "DiskSpec",
    "Dram",
    "DramSpec",
    "EnergyMeter",
    "FlashSsd",
    "HardDisk",
    "IdealProportionalDevice",
    "PowerState",
    "PowerStateMachine",
    "PsuSpec",
    "RaidArray",
    "RaidLevel",
    "Server",
    "SsdSpec",
    "Transition",
    "proportionality_index",
]
