"""Rotating-disk model (the paper's 15K-RPM SCSI drives).

Service time for a request is

    positioning (seek + half-rotation, charged when the request does not
    continue the previous stream) + transfer (bytes / bandwidth) + a small
    per-request controller overhead.

Power states follow §2.4: ``active`` while transferring, ``idle`` while
spinning without work, ``standby`` when spun down, with expensive
spin-up/spin-down transitions (latency and an energy spike).  Requests
arriving at a standby disk spin it up first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, Hashable, Optional

from repro.errors import HardwareError
from repro.hardware.device import Device
from repro.hardware.power import PowerState, PowerStateMachine, Transition
from repro.sim.resources import Resource
from repro.units import GB, MB

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulation


@dataclass(frozen=True)
class DiskSpec:
    """Static parameters of a rotating disk.

    Defaults approximate the paper's 73 GB 15K-RPM SCSI drives.
    """

    name: str = "disk"
    capacity_bytes: int = 73 * GB
    bandwidth_bytes_per_s: float = 90 * MB
    average_seek_seconds: float = 0.0035
    rpm: int = 15000
    per_request_overhead_seconds: float = 0.0002
    active_watts: float = 17.0
    idle_watts: float = 12.0
    standby_watts: float = 2.5
    spinup_seconds: float = 6.0
    spinup_joules: float = 90.0
    spindown_seconds: float = 1.5
    spindown_joules: float = 6.0
    #: offered RPM fractions (Hibernator-style multi-speed drives,
    #: [ZCT+05]); bandwidth scales linearly with the fraction, spindle
    #: power roughly as fraction^2.5
    speed_levels: tuple[float, ...] = (1.0,)
    speed_change_seconds: float = 2.0
    speed_change_joules: float = 4.0

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.bandwidth_bytes_per_s <= 0:
            raise HardwareError(f"{self.name}: capacity/bandwidth must be positive")
        if self.rpm <= 0:
            raise HardwareError(f"{self.name}: rpm must be positive")
        if not (0 <= self.standby_watts <= self.idle_watts
                <= self.active_watts):
            raise HardwareError(
                f"{self.name}: need standby <= idle <= active power")
        if (not self.speed_levels or 1.0 not in self.speed_levels
                or any(not 0 < f <= 1.0 for f in self.speed_levels)):
            raise HardwareError(
                f"{self.name}: speed levels must be fractions in (0, 1] "
                "and include 1.0")
        if self.speed_change_seconds < 0 or self.speed_change_joules < 0:
            raise HardwareError(f"{self.name}: negative speed-change cost")

    #: spindle power exponent: drag grows superlinearly with RPM
    SPEED_POWER_EXPONENT = 2.5

    def power_at_speed(self, full_watts: float, fraction: float) -> float:
        """Scale a full-speed power figure down to an RPM fraction."""
        scalable = max(0.0, full_watts - self.standby_watts)
        return (self.standby_watts
                + scalable * fraction ** self.SPEED_POWER_EXPONENT)

    @property
    def rotational_latency_seconds(self) -> float:
        """Average rotational delay: half a revolution."""
        return 0.5 * 60.0 / self.rpm

    @property
    def positioning_seconds(self) -> float:
        """Average positioning cost for a non-streaming request."""
        return self.average_seek_seconds + self.rotational_latency_seconds


class HardDisk(Device):
    """One spindle with queueing, stream-aware positioning, and spin-down."""

    ACTIVE = "active"
    IDLE = "idle"
    STANDBY = "standby"

    def __init__(self, sim: "Simulation", spec: DiskSpec) -> None:
        self.spec = spec
        self._psm = PowerStateMachine(
            states=[
                PowerState(self.ACTIVE, spec.active_watts),
                PowerState(self.IDLE, spec.idle_watts),
                PowerState(self.STANDBY, spec.standby_watts),
            ],
            transitions=[
                Transition(self.ACTIVE, self.IDLE),
                Transition(self.IDLE, self.ACTIVE),
                Transition(self.IDLE, self.STANDBY,
                           spec.spindown_seconds, spec.spindown_joules),
                Transition(self.STANDBY, self.IDLE,
                           spec.spinup_seconds, spec.spinup_joules),
            ],
            initial=self.IDLE,
        )
        super().__init__(sim, spec.name, initial_power_watts=spec.idle_watts)
        self.spindle = Resource(sim, capacity=1, name=f"{spec.name}.spindle")
        self._last_stream: Optional[Hashable] = None
        self._speed = 1.0
        self.bytes_read = 0
        self.bytes_written = 0
        self.requests_served = 0
        self.positioning_count = 0
        self.speed_changes = 0

    # -- state -------------------------------------------------------------
    @property
    def state(self) -> str:
        """Current power state name."""
        return self._psm.current

    @property
    def spun_down(self) -> bool:
        return self._psm.current == self.STANDBY

    # -- multi-speed operation (Hibernator-style, [ZCT+05]) -------------------
    @property
    def speed_fraction(self) -> float:
        """Current RPM as a fraction of nominal."""
        return self._speed

    def set_speed(self, fraction: float) -> Generator:
        """Shift the spindle to an offered RPM fraction (process).

        Waits for the spindle, pays the transition latency/energy, and
        changes service times and power from then on.  Illegal from
        standby (spin up first).
        """
        if fraction not in self.spec.speed_levels:
            raise HardwareError(
                f"{self.name}: {fraction} not an offered speed "
                f"{self.spec.speed_levels}")
        yield self.spindle.acquire()
        try:
            if self._psm.current == self.STANDBY:
                raise HardwareError(
                    f"{self.name}: cannot change speed while spun down")
            if fraction == self._speed:
                return
            self._charge_transition_energy(self.spec.speed_change_joules)
            yield self.sim.timeout(self.spec.speed_change_seconds)
            self._speed = fraction
            self.speed_changes += 1
            self._set_power(self._scaled_power(self._psm.power_watts))
        finally:
            self.spindle.release()

    def _scaled_power(self, full_watts: float) -> float:
        if self._psm.current == self.STANDBY:
            return full_watts
        return self.spec.power_at_speed(full_watts, self._speed)

    @property
    def effective_bandwidth_bytes_per_s(self) -> float:
        """Media rate at the current speed (linear in RPM)."""
        return self.spec.bandwidth_bytes_per_s * self._speed

    @property
    def effective_positioning_seconds(self) -> float:
        """Seek plus rotational latency at the current speed."""
        return (self.spec.average_seek_seconds
                + self.spec.rotational_latency_seconds / self._speed)

    # -- service-time arithmetic ----------------------------------------------
    def service_seconds(self, nbytes: int, positioned: bool) -> float:
        """Raw service time for one request (no queueing, no spin-up)."""
        if nbytes < 0:
            raise HardwareError(f"{self.name}: negative transfer size")
        seconds = (nbytes / self.effective_bandwidth_bytes_per_s
                   + self.spec.per_request_overhead_seconds)
        if not positioned:
            seconds += self.effective_positioning_seconds
        return seconds

    # -- transfers ----------------------------------------------------------
    def read(self, nbytes: int,
             stream: Optional[Hashable] = None) -> Generator:
        """Read ``nbytes`` (process).

        ``stream`` identifies a sequential stream: consecutive requests
        from the same stream skip the positioning cost; interleaved
        streams pay a seek each time the head switches between them.
        """
        yield from self._transfer(nbytes, stream, is_write=False)

    def write(self, nbytes: int,
              stream: Optional[Hashable] = None) -> Generator:
        """Write ``nbytes`` (process).  Same streaming rules as reads."""
        yield from self._transfer(nbytes, stream, is_write=True)

    def read_batch(self, nbytes: float, n_requests: float) -> Generator:
        """Serve a batch of random reads in one simulation step (process).

        Service time is ``n_requests`` positionings plus the aggregate
        transfer — the index-probe pattern, where per-request event
        granularity would be wasteful.
        """
        yield from self._transfer_batch(nbytes, n_requests, is_write=False)

    def write_batch(self, nbytes: float, n_requests: float) -> Generator:
        """Serve a batch of random writes in one simulation step."""
        yield from self._transfer_batch(nbytes, n_requests, is_write=True)

    def _transfer_batch(self, nbytes: float, n_requests: float,
                        is_write: bool) -> Generator:
        if nbytes < 0 or n_requests < 0:
            raise HardwareError(f"{self.name}: negative batch transfer")
        yield self.spindle.acquire()
        try:
            if self._psm.current == self.STANDBY:
                yield from self._spin_up_locked()
            self._last_stream = None  # the head ends up somewhere random
            self.positioning_count += int(round(n_requests))
            seconds = (n_requests * (self.effective_positioning_seconds
                                     + self.spec.per_request_overhead_seconds)
                       + nbytes / self.effective_bandwidth_bytes_per_s)
            self._enter(self.ACTIVE)
            self._mark_busy()
            try:
                yield self.sim.timeout(seconds)
            finally:
                self._mark_idle()
                self._enter(self.IDLE)
            self.requests_served += int(round(n_requests))
            if is_write:
                self.bytes_written += int(nbytes)
            else:
                self.bytes_read += int(nbytes)
        finally:
            self.spindle.release()

    def _transfer(self, nbytes: int, stream: Optional[Hashable],
                  is_write: bool) -> Generator:
        if nbytes < 0:
            raise HardwareError(f"{self.name}: negative transfer size")
        yield self.spindle.acquire()
        try:
            if self._psm.current == self.STANDBY:
                yield from self._spin_up_locked()
            positioned = stream is not None and stream == self._last_stream
            self._last_stream = stream
            if not positioned:
                self.positioning_count += 1
            self._enter(self.ACTIVE)
            self._mark_busy()
            try:
                yield self.sim.timeout(self.service_seconds(nbytes, positioned))
            finally:
                self._mark_idle()
                self._enter(self.IDLE)
            self.requests_served += 1
            if is_write:
                self.bytes_written += nbytes
            else:
                self.bytes_read += nbytes
        finally:
            self.spindle.release()

    # -- spin up / down -------------------------------------------------------
    def spin_down(self) -> Generator:
        """Spin the disk down to standby (process)."""
        yield self.spindle.acquire()
        try:
            if self._psm.current == self.STANDBY:
                return
            transition = self._psm.transition(self.STANDBY)
            self._charge_transition_energy(transition.energy_joules)
            yield self.sim.timeout(transition.latency_seconds)
            self._set_power(self._psm.power_watts)
        finally:
            self.spindle.release()

    def spin_up(self) -> Generator:
        """Spin the disk up to idle (process)."""
        yield self.spindle.acquire()
        try:
            if self._psm.current != self.STANDBY:
                return
            yield from self._spin_up_locked()
        finally:
            self.spindle.release()

    def _spin_up_locked(self) -> Generator:
        transition = self._psm.transition(self.IDLE)
        self._charge_transition_energy(transition.energy_joules)
        yield self.sim.timeout(transition.latency_seconds)
        self._set_power(self._scaled_power(self._psm.power_watts))
        self._last_stream = None  # head position is stale after standby

    def _enter(self, state: str) -> None:
        if self._psm.current != state:
            self._psm.transition(state)
            self._set_power(self._scaled_power(self._psm.power_watts))

    @property
    def active_power_per_unit_watts(self) -> float:
        """Active power charged per busy spindle-second (Figure 2 style)."""
        return self._scaled_power(self.spec.active_watts)
