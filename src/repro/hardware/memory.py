"""DRAM model.

The paper (§4.3) points out that "keeping a page in RAM will require
energy, proportional to the time the page is cached".  This model makes
that cost explicit: powered capacity draws a constant background
(refresh + standby) power per GiB, accesses add an active-power term for
their duration, and ranks can be powered down to shrink the background
term (§2.3's "strategies for dynamically turning off DRAM").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator

from repro.errors import HardwareError
from repro.hardware.device import Device
from repro.units import GB, GIB

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulation


@dataclass(frozen=True)
class DramSpec:
    """Static parameters of a DRAM subsystem."""

    name: str = "dram"
    capacity_bytes: int = 16 * GIB
    background_watts_per_gib: float = 0.6
    #: extra draw per GiB actually allocated (rows kept open / traffic);
    #: this is what makes a big hash-table grant cost power (§4.1)
    allocated_watts_per_gib: float = 1.2
    active_extra_watts: float = 4.0
    bandwidth_bytes_per_s: float = 10 * GB
    rank_bytes: int = 4 * GIB

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise HardwareError(f"{self.name}: capacity must be positive")
        if self.background_watts_per_gib < 0 or self.active_extra_watts < 0:
            raise HardwareError(f"{self.name}: negative power parameter")
        if self.bandwidth_bytes_per_s <= 0:
            raise HardwareError(f"{self.name}: bandwidth must be positive")
        if self.rank_bytes <= 0 or self.rank_bytes > self.capacity_bytes:
            raise HardwareError(f"{self.name}: bad rank size")


class Dram(Device):
    """Byte-addressable memory with background and active power."""

    def __init__(self, sim: "Simulation", spec: DramSpec) -> None:
        self.spec = spec
        self._powered_bytes = spec.capacity_bytes
        self._allocated_bytes = 0
        super().__init__(sim, spec.name,
                         initial_power_watts=self._background_watts())

    # -- capacity management ---------------------------------------------
    @property
    def capacity_bytes(self) -> int:
        return self.spec.capacity_bytes

    @property
    def powered_bytes(self) -> int:
        """Bytes of capacity currently drawing background power."""
        return self._powered_bytes

    @property
    def allocated_bytes(self) -> int:
        """Bytes currently allocated by clients (buffer pools etc.)."""
        return self._allocated_bytes

    def set_powered_bytes(self, nbytes: int) -> None:
        """Power ranks up/down; powered capacity is rank-granular.

        Powering below the currently-allocated footprint is illegal: the
        caller must migrate or free data first (paper §4.2's consolidation
        ordering requirement).
        """
        if nbytes < 0 or nbytes > self.spec.capacity_bytes:
            raise HardwareError(
                f"{self.name}: powered bytes {nbytes} outside "
                f"0..{self.spec.capacity_bytes}")
        ranks = -(-nbytes // self.spec.rank_bytes)  # ceil division
        granted = min(ranks * self.spec.rank_bytes, self.spec.capacity_bytes)
        if granted < self._allocated_bytes:
            raise HardwareError(
                f"{self.name}: cannot power down to {granted} bytes while "
                f"{self._allocated_bytes} bytes are allocated")
        self._powered_bytes = granted
        self._update_power()

    def allocate(self, nbytes: int) -> None:
        """Reserve ``nbytes`` of powered capacity."""
        if nbytes < 0:
            raise HardwareError(f"{self.name}: negative allocation")
        if self._allocated_bytes + nbytes > self._powered_bytes:
            raise HardwareError(
                f"{self.name}: allocation of {nbytes} exceeds powered "
                f"capacity ({self._allocated_bytes} of "
                f"{self._powered_bytes} in use)")
        self._allocated_bytes += nbytes
        self._update_power()

    def free(self, nbytes: int) -> None:
        """Release ``nbytes`` previously allocated."""
        if nbytes < 0 or nbytes > self._allocated_bytes:
            raise HardwareError(
                f"{self.name}: freeing {nbytes} with only "
                f"{self._allocated_bytes} allocated")
        self._allocated_bytes -= nbytes
        self._update_power()

    # -- access ------------------------------------------------------------
    def access(self, nbytes: int) -> Generator:
        """Stream ``nbytes`` through the memory bus (process)."""
        if nbytes < 0:
            raise HardwareError(f"{self.name}: negative access size")
        if nbytes == 0:
            return
        self._mark_busy()
        try:
            yield self.sim.timeout(nbytes / self.spec.bandwidth_bytes_per_s)
        finally:
            self._mark_idle()

    def access_seconds(self, nbytes: int) -> float:
        """Service time for an access (no queueing)."""
        return nbytes / self.spec.bandwidth_bytes_per_s

    # -- energy helpers -------------------------------------------------------
    def residency_watts(self, nbytes: int) -> float:
        """Background power attributable to keeping ``nbytes`` resident.

        Used by the energy-aware buffer manager (§4.3) to price caching a
        page against re-fetching it later.
        """
        if nbytes < 0:
            raise HardwareError(f"{self.name}: negative residency size")
        return self.spec.background_watts_per_gib * nbytes / GIB

    def _background_watts(self) -> float:
        return self.spec.background_watts_per_gib * self._powered_bytes / GIB

    def _update_power(self) -> None:
        power = self._background_watts()
        power += self.spec.allocated_watts_per_gib * self._allocated_bytes / GIB
        if self.busy_units > 0:
            power += self.spec.active_extra_watts
        self._set_power(power)

    def _on_activity_change(self) -> None:
        self._update_power()
