"""PVC: processor voltage/frequency control as a serving policy.

Lang & Patel (arXiv 0909.1767, PAPERS.md) call the first of their two
eco-friendly mechanisms **PVC**: run the processor at a lower
voltage/frequency point whenever the workload has latency slack, since
dynamic power falls with the *cube* of frequency while service time
only grows linearly.  The repo already owns that arithmetic — the
chaos engine prices CPU throttling with the same cubic rule
(:func:`repro.hardware.cpu.dvfs_power_watts`) — but there it is a
*fault*.  :class:`PVCPolicy` promotes it to a deliberate governor: a
wrapper around any routing policy that, per admitted arrival, picks
the lowest frequency step whose slowed execution still fits inside the
tenant's SLA headroom.

The engine executes a downclocked query at busy draw

    idle + (peak - idle) * f**3          (watts)

for ``service / f`` seconds, so the active energy above idle scales by
``f**2`` — a 0.55 step spends ~30% of the full-speed active Joules on
the same query.  At ``f == 1.0`` the engine takes the ordinary
:meth:`~repro.service.node.FleetNode.serve` path, which is what makes
``frequency_steps=(1.0,)`` byte-identical to the unwrapped inner
policy (the property tests pin this).

Routing, admission, and autoscaling all delegate to the wrapped
``inner`` policy (default ``power_aware``), so PVC composes with every
registered router, heterogeneous fleets included.  Extra knobs pass
through to the inner factory: ``make_policy("pvc",
pack_backlog_seconds=0.5)`` builds a PVC governor over a packing
router with that bound.

>>> from repro.service.dispatch import DispatchContext
>>> from repro.service.node import FleetNode, NodePowerModel
>>> pvc = PVCPolicy()          # wraps power_aware by default
>>> pvc.name
'pvc(power_aware)'
>>> node = FleetNode("n0", NodePowerModel())    # 200 W idle / 350 W peak
>>> ctx = DispatchContext([node], [0], 0.0, 0.30, sla_seconds=4.0)
>>> pvc.frequency(ctx, 0)      # 0.3 s job, 2.4 s budget: deepest step
0.55
>>> ctx = DispatchContext([node], [0], 0.0, 2.50, sla_seconds=4.0)
>>> pvc.frequency(ctx, 0)      # 2.5 s job: even 0.85 overshoots 2.4 s
1.0
>>> pvc.frequency(DispatchContext([node], [0], 0.0, 0.30), 0)
1.0
"""

from __future__ import annotations

from typing import Optional

from repro.flightrec.context import current_recorder
from repro.service.dispatch import (DispatchContext, DispatchPolicy,
                                    make_policy, register_policy)
from repro.service.node import FleetNode
from repro.service.report import ServiceError

#: the default governor ladder: full speed plus three downclock steps,
#: the deepest spending ~30% of full-speed active energy per query
DEFAULT_FREQUENCY_STEPS: tuple[float, ...] = (1.0, 0.85, 0.7, 0.55)


class PVCPolicy(DispatchPolicy):
    """Per-node frequency governor over a wrapped routing policy.

    For every admitted arrival the governor asks: after the inner
    policy has routed it to node ``i``, what is the lowest frequency
    step ``f`` such that the node's current backlog plus the slowed
    execution (``scaled_service / f``) still finishes within
    ``sla * sla_headroom``?  That step wins; if none fits — or the
    arrival carries no SLA — the query runs at full speed.  Backlog is
    re-read per arrival, so a queue that builds up under downclocking
    pushes the governor back toward full speed by itself.

    ``sla_headroom`` is the fraction of the p95 target the *estimate*
    may consume; the gap to 1.0 absorbs queueing noise the closed-form
    estimate cannot see.  Because the report's SLA check is on the
    p95, headroom well below 1.0 keeps downclocked tenants compliant.
    """

    name = "pvc"
    dvfs = True

    def __init__(self, inner: DispatchPolicy | str = "power_aware",
                 frequency_steps: tuple[float, ...] = DEFAULT_FREQUENCY_STEPS,
                 sla_headroom: float = 0.6,
                 admission_limit_seconds: Optional[float] = None,
                 **inner_kwargs) -> None:
        super().__init__(admission_limit_seconds)
        self.inner = make_policy(inner, **inner_kwargs)
        if self.inner.batching or self.inner.dvfs:
            raise ServiceError(
                f"pvc cannot wrap {self.inner.name!r}: wrap the router "
                "with pvc first, then batch with qed on top")
        steps = tuple(sorted({float(f) for f in frequency_steps}))
        if not steps:
            raise ServiceError("pvc needs at least one frequency step")
        if steps[0] <= 0 or steps[-1] > 1.0:
            raise ServiceError(
                f"frequency steps must lie in (0, 1], got {steps}")
        #: ascending, so the first fitting step is the deepest downclock
        self.frequency_steps = steps
        if not 0 < sla_headroom <= 1.0:
            raise ServiceError(
                f"SLA headroom must lie in (0, 1], got {sla_headroom}")
        self.sla_headroom = sla_headroom
        self.autoscaled = self.inner.autoscaled
        self.name = f"pvc({self.inner.name})"

    def route(self, ctx: DispatchContext) -> int:
        return self.inner.route(ctx)

    def admits(self, node: FleetNode, now: float) -> bool:
        return super().admits(node, now) and self.inner.admits(node, now)

    def frequency(self, ctx: DispatchContext, i: int) -> float:
        chosen = self._choose(ctx, i)
        rec = current_recorder()
        if rec is not None and rec.detail:
            rec.events.append(
                (ctx.now, "dvfs_decision", i, None, None,
                 {"frequency": chosen, "sla_seconds": ctx.sla_seconds,
                  "backlog": ctx.nodes[i].backlog(ctx.now)}))
        return chosen

    def _choose(self, ctx: DispatchContext, i: int) -> float:
        if ctx.sla_seconds is None:
            return 1.0
        budget = ctx.sla_seconds * self.sla_headroom
        backlog = ctx.nodes[i].backlog(ctx.now)
        execution = ctx.scaled_service_seconds(i)
        for f in self.frequency_steps:
            if f >= 1.0:
                break  # full speed is the engine's ordinary path
            if backlog + execution / f <= budget:
                return f
        return 1.0


register_policy(PVCPolicy)
