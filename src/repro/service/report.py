"""Serving results: per-tenant SLA outcomes plus fleet energy.

A :class:`ServiceReport` is the serving analogue of
:class:`~repro.workloads.throughput.ThroughputReport`: one dispatch
policy's outcome over an open-loop arrival stream, carrying the
fleet-level energy, the per-tenant latency quantiles the SLA is written
against, and per-node utilization so the consolidation story ("idle
nodes sleep") is visible in the numbers.  It speaks the unified report
protocol — ``to_dict``/``from_dict`` invert exactly — so serving sweeps
cache, pool, and serialize like every other experiment.

:class:`ServiceSweepResult` is the figure-level container a policy
sweep aggregates into: the cluster-scale analogue of Figure 1's
"fastest vs. most efficient" framing, comparing Joules/query at equal
SLA across dispatch policies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from repro.core.metrics import energy_efficiency
from repro.errors import ReproError


class ServiceError(ReproError):
    """Fleet-serving configuration or bookkeeping failure."""


def quantile(sorted_values: list[float], q: float) -> float:
    """The ``q``-quantile of an ascending list (linear interpolation).

    Raises on an empty list — an SLA over zero completions is
    undefined, consistently with :mod:`repro.core.metrics`.
    """
    if not sorted_values:
        raise ServiceError("no samples: quantile of an empty run")
    if not 0.0 <= q <= 1.0:
        raise ServiceError(f"quantile {q} out of [0, 1]")
    pos = q * (len(sorted_values) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


@dataclass
class TenantStats:
    """One tenant's SLA ledger for a serving run.

    ``crashed`` counts arrivals lost to node crashes after every retry
    was exhausted (zero on any healthy run); a tenant with zero
    completions did not survive the run — its latency fields are 0.0
    and :attr:`sla_met` is False by definition.
    """

    tenant: str
    completed: int
    rejected: int
    mean_latency_seconds: float
    p50_latency_seconds: float
    p95_latency_seconds: float
    p99_latency_seconds: float
    sla_p95_seconds: float
    crashed: int = 0

    @property
    def survived(self) -> bool:
        """Whether the tenant completed any queries at all."""
        return self.completed > 0

    @property
    def sla_met(self) -> bool:
        return self.survived and \
            self.p95_latency_seconds <= self.sla_p95_seconds

    def to_dict(self) -> dict[str, Any]:
        return {
            "tenant": self.tenant,
            "completed": self.completed,
            "rejected": self.rejected,
            "crashed": self.crashed,
            "mean_latency_seconds": self.mean_latency_seconds,
            "p50_latency_seconds": self.p50_latency_seconds,
            "p95_latency_seconds": self.p95_latency_seconds,
            "p99_latency_seconds": self.p99_latency_seconds,
            "sla_p95_seconds": self.sla_p95_seconds,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TenantStats":
        return cls(**dict(data))


@dataclass
class NodeStats:
    """One node's duty ledger: how long it was up, busy, and booting."""

    node: str
    completed: int
    on_seconds: float
    busy_seconds: float
    energy_joules: float
    boots: int
    crashes: int = 0
    #: the :class:`~repro.service.spec.NodeClass` this node belongs to
    node_class: str = "node"

    @property
    def utilization(self) -> float:
        """Busy fraction of powered-on time (0 for a never-on node)."""
        if self.on_seconds <= 0:
            return 0.0
        return self.busy_seconds / self.on_seconds

    def to_dict(self) -> dict[str, Any]:
        return {
            "node": self.node,
            "completed": self.completed,
            "on_seconds": self.on_seconds,
            "busy_seconds": self.busy_seconds,
            "energy_joules": self.energy_joules,
            "boots": self.boots,
            "crashes": self.crashes,
            "node_class": self.node_class,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "NodeStats":
        return cls(**dict(data))


@dataclass
class ClassStats:
    """One node class's rollup: the composition-level duty ledger.

    The heterogeneous-fleet reading of the §2.4 story lives here: which
    class carried the queries, which class burned the Joules, which
    class the autoscaler kept booting.  Rolled up from
    :class:`NodeStats` by :func:`rollup_classes`; nodes of duplicate
    class names merge into one row.
    """

    node_class: str
    count: int
    completed: int
    on_seconds: float
    busy_seconds: float
    energy_joules: float
    boots: int
    crashes: int = 0

    @property
    def utilization(self) -> float:
        """Busy fraction of the class's powered-on node-seconds."""
        if self.on_seconds <= 0:
            return 0.0
        return self.busy_seconds / self.on_seconds

    @property
    def joules_per_query(self) -> float:
        """Energy this class spent per query it completed."""
        if self.completed <= 0:
            raise ServiceError(
                f"class {self.node_class!r} completed no queries: "
                "Joules/query undefined")
        return self.energy_joules / self.completed

    def to_dict(self) -> dict[str, Any]:
        return {
            "node_class": self.node_class,
            "count": self.count,
            "completed": self.completed,
            "on_seconds": self.on_seconds,
            "busy_seconds": self.busy_seconds,
            "energy_joules": self.energy_joules,
            "boots": self.boots,
            "crashes": self.crashes,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ClassStats":
        return cls(**dict(data))


def rollup_classes(nodes: list[NodeStats]) -> list["ClassStats"]:
    """Fold per-node ledgers into per-class rows (first-seen order)."""
    by_class: dict[str, ClassStats] = {}
    for n in nodes:
        row = by_class.get(n.node_class)
        if row is None:
            by_class[n.node_class] = ClassStats(
                node_class=n.node_class, count=1, completed=n.completed,
                on_seconds=n.on_seconds, busy_seconds=n.busy_seconds,
                energy_joules=n.energy_joules, boots=n.boots,
                crashes=n.crashes)
        else:
            row.count += 1
            row.completed += n.completed
            row.on_seconds += n.on_seconds
            row.busy_seconds += n.busy_seconds
            row.energy_joules += n.energy_joules
            row.boots += n.boots
            row.crashes += n.crashes
    return list(by_class.values())


@dataclass
class FaultStats:
    """The chaos ledger of one serving run.

    Injected-fault counts cover events the engine actually applied;
    ``faults_skipped`` counts scheduled events that found their node
    already down (crash-on-crashed, crash-on-parked).  The query-side
    counts reconcile exactly with the report:
    ``queries_offered == queries_completed + queries_rejected +
    queries_lost`` — every arrival is completed, rejected at admission
    (including shed and retry-exhausted timeouts), or attributed to a
    crash.
    """

    crashes: int = 0
    recoveries: int = 0
    throttle_windows: int = 0
    disk_failures: int = 0
    timeout_windows: int = 0
    faults_skipped: int = 0
    #: arrivals destroyed by a crash and never completed by a retry
    queries_lost: int = 0
    #: arrivals destroyed by a crash but completed on a later attempt
    queries_recovered: int = 0
    #: re-dispatch attempts performed (crash recoveries + timeout hits)
    retries: int = 0
    #: dispatch attempts that hit a timeout window
    timeouts: int = 0
    #: arrivals rejected by the shed policy (subset of rejected)
    queries_shed: int = 0
    #: replacement nodes the autoscaler booted at crash instants
    emergency_boots: int = 0
    #: injected crash downtime inside the run (node-seconds)
    node_seconds_lost: float = 0.0
    #: node_seconds_lost / (n_nodes * makespan)
    downtime_fraction: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "crashes": self.crashes,
            "recoveries": self.recoveries,
            "throttle_windows": self.throttle_windows,
            "disk_failures": self.disk_failures,
            "timeout_windows": self.timeout_windows,
            "faults_skipped": self.faults_skipped,
            "queries_lost": self.queries_lost,
            "queries_recovered": self.queries_recovered,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "queries_shed": self.queries_shed,
            "emergency_boots": self.emergency_boots,
            "node_seconds_lost": self.node_seconds_lost,
            "downtime_fraction": self.downtime_fraction,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultStats":
        return cls(**dict(data))


@dataclass
class ServiceReport:
    """Outcome of serving one arrival stream under one dispatch policy."""

    policy: str
    n_nodes: int
    queries_offered: int
    queries_completed: int
    queries_rejected: int
    makespan_seconds: float
    energy_joules: float
    p50_latency_seconds: float
    p95_latency_seconds: float
    p99_latency_seconds: float
    mean_latency_seconds: float
    node_seconds_on: float
    tenants: list[TenantStats] = field(default_factory=list)
    nodes: list[NodeStats] = field(default_factory=list)
    #: chaos ledger; None on a fault-free run
    faults: Optional[FaultStats] = None
    #: per-node-class rollups (one row per class, declaration order)
    classes: list[ClassStats] = field(default_factory=list)
    #: the serialized :class:`~repro.service.spec.FleetSpec` that built
    #: the fleet (provenance; None on reports from older ledgers)
    fleet: Optional[dict[str, Any]] = None
    #: which serving core produced this report (``"event"`` or
    #: ``"loop"``); runtime-only metadata — excluded from equality and
    #: :meth:`to_dict`, so the two engines' reports stay byte-identical
    #: and ledger records / cache keys never see it
    engine: Optional[str] = field(default=None, compare=False)
    #: per-arrival latencies in stream order (NaN where rejected);
    #: runtime-only metadata like :attr:`engine` — excluded from
    #: equality and :meth:`to_dict`.  The pipelines layer reads these
    #: to derive per-stage completion windows without re-simulating.
    latencies: Optional[Any] = field(default=None, compare=False,
                                     repr=False)

    # -- derived metrics (empty runs raise, like core.metrics) --------

    @property
    def energy_efficiency(self) -> float:
        """Queries per Joule (§2.1 applied at fleet scale)."""
        return energy_efficiency(float(self.queries_completed),
                                 self.energy_joules)

    @property
    def joules_per_query(self) -> float:
        """The headline serving metric: energy per completed query."""
        if self.queries_completed <= 0:
            raise ServiceError("no queries completed: Joules/query "
                               "undefined")
        return self.energy_joules / self.queries_completed

    @property
    def average_power_watts(self) -> float:
        if self.makespan_seconds <= 0:
            raise ServiceError("empty run: average power undefined")
        return self.energy_joules / self.makespan_seconds

    @property
    def average_active_nodes(self) -> float:
        """Time-averaged powered-on node count."""
        if self.makespan_seconds <= 0:
            raise ServiceError("empty run: active-node average undefined")
        return self.node_seconds_on / self.makespan_seconds

    @property
    def queries_lost(self) -> int:
        """Arrivals attributed to crashes (0 on a fault-free run)."""
        return self.faults.queries_lost if self.faults is not None else 0

    @property
    def availability(self) -> float:
        """Completed fraction of offered queries — the paper's
        Joules-vs-availability trade-off, measured."""
        if self.queries_offered <= 0:
            raise ServiceError("empty run: availability undefined")
        return self.queries_completed / self.queries_offered

    @property
    def slas_met(self) -> bool:
        """True when every tenant's p95 target held."""
        return all(t.sla_met for t in self.tenants)

    @property
    def surviving_slas_met(self) -> bool:
        """True when every tenant that completed anything met its SLA
        (the degraded-mode acceptance reading: lost tenants are
        counted by availability, survivors by latency)."""
        return all(t.sla_met for t in self.tenants if t.survived)

    def tenant(self, name: str) -> TenantStats:
        for stats in self.tenants:
            if stats.tenant == name:
                return stats
        raise ServiceError(f"report has no tenant {name!r}")

    def node_class(self, name: str) -> ClassStats:
        for stats in self.classes:
            if stats.node_class == name:
                return stats
        known = ", ".join(c.node_class for c in self.classes) or "(none)"
        raise ServiceError(
            f"report has no node class {name!r}; classes: {known}")

    def rows(self) -> list[tuple]:
        """Per-tenant SLA rows for the table printers."""
        return [
            (t.tenant, t.completed, t.rejected,
             t.p95_latency_seconds, t.sla_p95_seconds,
             "met" if t.sla_met else "MISSED")
            for t in self.tenants
        ]

    # -- serialization ------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "policy": self.policy,
            "n_nodes": self.n_nodes,
            "queries_offered": self.queries_offered,
            "queries_completed": self.queries_completed,
            "queries_rejected": self.queries_rejected,
            "makespan_seconds": self.makespan_seconds,
            "energy_joules": self.energy_joules,
            "p50_latency_seconds": self.p50_latency_seconds,
            "p95_latency_seconds": self.p95_latency_seconds,
            "p99_latency_seconds": self.p99_latency_seconds,
            "mean_latency_seconds": self.mean_latency_seconds,
            "node_seconds_on": self.node_seconds_on,
            "tenants": [t.to_dict() for t in self.tenants],
            "nodes": [n.to_dict() for n in self.nodes],
            "faults": (self.faults.to_dict()
                       if self.faults is not None else None),
            "classes": [c.to_dict() for c in self.classes],
            "fleet": self.fleet,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ServiceReport":
        payload = dict(data)
        payload["tenants"] = [TenantStats.from_dict(t)
                              for t in data.get("tenants", [])]
        payload["nodes"] = [NodeStats.from_dict(n)
                            for n in data.get("nodes", [])]
        faults = data.get("faults")
        payload["faults"] = (FaultStats.from_dict(faults)
                             if faults is not None else None)
        payload["classes"] = [ClassStats.from_dict(c)
                              for c in data.get("classes", [])]
        payload["fleet"] = data.get("fleet")
        return cls(**payload)


@dataclass
class ServiceSweepResult:
    """A policy sweep folded into one comparable result.

    The serving analogue of :class:`~repro.core.experiments.Figure1Result`:
    instead of disk counts, the axis is the dispatch policy, and the
    paper's "diminishing returns" reading becomes "equal SLA, fewer
    Joules" — consolidation in space at cluster scale (§4.2, [TWM+08]).
    """

    reports: list[ServiceReport]

    def policies(self) -> list[str]:
        return [r.policy for r in self.reports]

    def report(self, policy: str) -> ServiceReport:
        for r in self.reports:
            if r.policy == policy:
                return r
        raise ServiceError(f"sweep has no policy {policy!r}; "
                           f"ran: {', '.join(self.policies())}")

    def savings_vs(self, policy: str, baseline: str) -> float:
        """Fractional Joules/query saving of ``policy`` over ``baseline``."""
        base = self.report(baseline).joules_per_query
        return 1.0 - self.report(policy).joules_per_query / base

    def headline(self) -> dict[str, float]:
        """The acceptance numbers: packing vs. round-robin.

        Returns the Joules/query of both policies, the fractional
        saving, and both p95s (packing must not be worse to claim the
        paper's consolidation story at equal SLA).
        """
        packing = self.report("power_aware")
        rr = self.report("round_robin")
        return {
            "power_aware_joules_per_query": packing.joules_per_query,
            "round_robin_joules_per_query": rr.joules_per_query,
            "savings_fraction": self.savings_vs("power_aware",
                                                "round_robin"),
            "power_aware_p95_seconds": packing.p95_latency_seconds,
            "round_robin_p95_seconds": rr.p95_latency_seconds,
        }

    def rows(self) -> list[tuple]:
        """Paper-style rows: policy, J/query, p95, avg nodes on."""
        return [
            (r.policy, r.queries_completed, r.joules_per_query,
             r.p95_latency_seconds, r.average_active_nodes,
             "met" if r.slas_met else "MISSED")
            for r in self.reports
        ]

    def to_dict(self) -> dict[str, Any]:
        return {"reports": [r.to_dict() for r in self.reports]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ServiceSweepResult":
        return cls(reports=[ServiceReport.from_dict(r)
                            for r in data.get("reports", [])])
