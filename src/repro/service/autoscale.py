"""Fleet autoscaling with spin-up break-even accounting (§2.4, §4.2).

The autoscaler is the temporal half of consolidation: the dispatcher
packs load in space, the autoscaler turns the resulting cold tail off —
but only when the power cycle pays for itself.  Every scale-down is
gated by the node model's break-even time (boot + drain Joules repaid
at the avoided idle draw), the same arithmetic as
:meth:`repro.consolidation.migration.MigrationOutcome.breakeven_seconds`
— a node is only worth switching off if demand has stayed low for at
least that long.

:func:`calibrated_drain_joules` closes the loop with the metered
layer: it executes a real
:class:`~repro.storage.partitioner.ConsolidationPlan` through
:func:`~repro.consolidation.migration.execute_consolidation` on
simulated disks and prices the fleet model's drain lump from the
metered migration energy, so the fast fleet path and the per-device
simulation agree on what powering a node down actually costs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.service.node import FleetNode, NodePowerModel
from repro.service.report import ServiceError

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.disk import HardDisk


class Autoscaler:
    """Epoch-based reactive scaler over a fixed node order.

    Every ``epoch_seconds`` it smooths the observed demand (service
    seconds offered per second, EWMA) into a desired node count at
    ``target_utilization``, then:

    * scales **up** immediately — latency is on the line — booting
      powered-off nodes in index order;
    * scales **down** only after demand has stayed below the current
      capacity for both ``cooldown_epochs`` and the model's break-even
      time, powering off drained nodes from the tail of the index
      order (the dispatcher packs from the head, so the tail is cold).
    """

    def __init__(self, model: NodePowerModel,
                 epoch_seconds: float = 30.0,
                 target_utilization: float = 0.55,
                 min_nodes: int = 2,
                 ewma_alpha: float = 0.4,
                 cooldown_epochs: int = 2) -> None:
        if epoch_seconds <= 0:
            raise ServiceError("epoch must be positive")
        if not 0.0 < target_utilization <= 1.0:
            raise ServiceError("target utilization must be in (0, 1]")
        if min_nodes < 1:
            raise ServiceError("need at least one node powered on")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ServiceError("EWMA alpha must be in (0, 1]")
        self.model = model
        self.epoch_seconds = epoch_seconds
        self.target_utilization = target_utilization
        self.min_nodes = min_nodes
        self.ewma_alpha = ewma_alpha
        self.cooldown_epochs = cooldown_epochs
        self._epoch_demand_seconds = 0.0
        self._smoothed_rate: float | None = None
        self._below_since: float | None = None
        #: (time, powered-on count) decision log for reports/tests
        self.decisions: list[tuple[float, int]] = []
        #: replacement boots performed at crash instants (not epochs)
        self.emergency_boots = 0

    def observe(self, service_seconds: float) -> None:
        """Account one arrival's service demand into the current epoch."""
        self._epoch_demand_seconds += service_seconds

    def desired_nodes(self, n_nodes: int) -> int:
        """Node count that serves the smoothed demand at target load."""
        rate = self._smoothed_rate or 0.0
        want = rate / self.target_utilization
        nodes = int(want) + (0 if want == int(want) else 1)
        return max(self.min_nodes, min(n_nodes, nodes))

    def step(self, now: float, nodes: Sequence[FleetNode],
             on_ids: list[int]) -> None:
        """Close the epoch ending at ``now`` and adjust the fleet.

        ``on_ids`` is the fleet's live powered-on index list (ascending)
        and is mutated in place.
        """
        observed = self._epoch_demand_seconds / self.epoch_seconds
        self._epoch_demand_seconds = 0.0
        if self._smoothed_rate is None:
            self._smoothed_rate = observed
        else:
            self._smoothed_rate += self.ewma_alpha * (observed
                                                     - self._smoothed_rate)
        desired = self.desired_nodes(len(nodes))

        if desired > len(on_ids):
            off = [i for i in range(len(nodes)) if not nodes[i].on]
            for i in off[: desired - len(on_ids)]:
                # a draining node (busy_until ahead of now) waits a turn
                if nodes[i].busy_until <= now:
                    nodes[i].power_on(now)
                    on_ids.append(i)
            on_ids.sort()
            self._below_since = None
        elif desired < len(on_ids):
            if self._below_since is None:
                self._below_since = now
            hold = max(self.cooldown_epochs * self.epoch_seconds,
                       self.model.breakeven_seconds())
            if now - self._below_since >= hold:
                self._scale_down(now, nodes, on_ids, desired)
        else:
            self._below_since = None
        self.decisions.append((now, len(on_ids)))

    def emergency(self, now: float, nodes: Sequence[FleetNode],
                  on_ids: list[int],
                  downtime_seconds: float) -> list[int]:
        """React to a crash *now* instead of waiting for the epoch.

        Boots spare (powered-off, repaired, drained) nodes until the
        smoothed demand is covered again — but only when the outage is
        worth a power cycle: a crash shorter than the model's
        break-even time costs less in queueing than the boot + drain
        lumps a replacement would burn, the same accounting that gates
        every scale-down.  Returns the indices booted; the boot energy
        is priced through :meth:`FleetNode.power_on` as usual.
        """
        if downtime_seconds < self.model.breakeven_seconds():
            return []
        desired = self.desired_nodes(len(nodes))
        booted: list[int] = []
        for i in range(len(nodes)):
            if len(on_ids) + len(booted) >= desired:
                break
            node = nodes[i]
            if not node.on and node.busy_until <= now:
                node.power_on(now)
                booted.append(i)
        if booted:
            on_ids.extend(booted)
            on_ids.sort()
            self.emergency_boots += len(booted)
            self.decisions.append((now, len(on_ids)))
        return booted

    def _scale_down(self, now: float, nodes: Sequence[FleetNode],
                    on_ids: list[int], desired: int) -> None:
        # tail-first, and only nodes whose pipes have fully drained —
        # power_off would (rightly) refuse a node with backlog
        for i in reversed(list(on_ids)):
            if len(on_ids) <= desired:
                break
            if nodes[i].backlog(now) <= 0.0:
                nodes[i].power_off(now)
                on_ids.remove(i)


def calibrated_drain_joules(
        sim, disks: Sequence["HardDisk"],
        resident_bytes: int = 64 * 1024 * 1024) -> float:
    """Meter what draining one node's state actually costs.

    Builds a one-move :class:`~repro.storage.partitioner.ConsolidationPlan`
    (evacuate ``resident_bytes`` of hot state off the released device,
    then spin it down) and executes it against real simulated disks via
    :func:`~repro.consolidation.migration.execute_consolidation`.  The
    metered migration energy is the drain lump a
    :class:`NodePowerModel` should charge per power-off.
    """
    from repro.consolidation.migration import execute_consolidation
    from repro.storage.partitioner import ConsolidationPlan, Move

    if len(disks) < 2:
        raise ServiceError("drain calibration needs a source and a target "
                           "disk")
    source, target = disks[0], disks[1]
    plan = ConsolidationPlan(
        assignments={"resident": target.spec.name},
        moves=[Move(partition="resident", source=source.spec.name,
                    target=target.spec.name, size_bytes=resident_bytes)],
        devices_kept=[target.spec.name],
        devices_released=[source.spec.name],
    )
    outcome = execute_consolidation(
        sim, plan, {d.spec.name: d for d in disks})
    return outcome.migration_energy_joules
