"""Fleet autoscaling with spin-up break-even accounting (§2.4, §4.2).

The autoscaler is the temporal half of consolidation: the dispatcher
packs load in space, the autoscaler turns the resulting cold tail off —
but only when the power cycle pays for itself.  Every scale-down is
gated by the candidate node's break-even time (boot + drain Joules
repaid at the avoided idle draw), the same arithmetic as
:meth:`repro.consolidation.migration.MigrationOutcome.breakeven_seconds`
— a node is only worth switching off if demand has stayed low for at
least that long.

On a heterogeneous :class:`~repro.service.spec.FleetSpec` fleet the
scaler is class-aware: demand is tracked in speed-1 node-equivalents
(capacity), scale-ups boot the class with the lowest energy per unit
of work at target utilization first, scale-downs drain the most
expensive class first, and both the cooldown hold and the emergency
crash-boot gate use each candidate's *own* break-even time — a wimpy
node with a small boot lump is worth cycling in outages a beefy node
should ride out.  On a single-class fleet every rule degenerates to
the classic count-based behavior, bit for bit.

:func:`calibrated_drain_joules` closes the loop with the metered
layer: it executes a real
:class:`~repro.storage.partitioner.ConsolidationPlan` through
:func:`~repro.consolidation.migration.execute_consolidation` on
simulated disks and prices the fleet model's drain lump from the
metered migration energy, so the fast fleet path and the per-device
simulation agree on what powering a node down actually costs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.service.node import FleetNode, NodePowerModel
from repro.service.report import ServiceError

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.disk import HardDisk


class Autoscaler:
    """Epoch-based reactive scaler over a fixed node order.

    Every ``epoch_seconds`` it smooths the observed demand (service
    seconds offered per second, EWMA) into a desired fleet *capacity*
    at ``target_utilization``, then:

    * scales **up** immediately — latency is on the line — booting
      powered-off nodes cheapest-energy-per-work first (index order
      within a class, which on a single-class fleet is plain index
      order);
    * scales **down** only after demand has stayed below the current
      capacity for both ``cooldown_epochs`` and the candidate's
      break-even time, powering off drained nodes costliest class
      first, from the tail of the index order (the dispatcher packs
      from the head, so the tail is cold).

    ``model`` is the reference :class:`NodePowerModel` used by the
    count-based :meth:`desired_nodes` convenience; per-node decisions
    always read each node's own model.
    """

    def __init__(self, model: NodePowerModel,
                 epoch_seconds: float = 30.0,
                 target_utilization: float = 0.55,
                 min_nodes: int = 2,
                 ewma_alpha: float = 0.4,
                 cooldown_epochs: int = 2) -> None:
        if epoch_seconds <= 0:
            raise ServiceError("epoch must be positive")
        if not 0.0 < target_utilization <= 1.0:
            raise ServiceError("target utilization must be in (0, 1]")
        if min_nodes < 1:
            raise ServiceError("need at least one node powered on")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ServiceError("EWMA alpha must be in (0, 1]")
        self.model = model
        self.epoch_seconds = epoch_seconds
        self.target_utilization = target_utilization
        self.min_nodes = min_nodes
        self.ewma_alpha = ewma_alpha
        self.cooldown_epochs = cooldown_epochs
        self._epoch_demand_seconds = 0.0
        self._smoothed_rate: float | None = None
        self._below_since: float | None = None
        #: (time, powered-on count) decision log for reports/tests
        self.decisions: list[tuple[float, int]] = []
        #: replacement boots performed at crash instants (not epochs)
        self.emergency_boots = 0

    def observe(self, service_seconds: float) -> None:
        """Account one arrival's service demand into the current epoch."""
        self._epoch_demand_seconds += service_seconds

    def desired_capacity(self) -> float:
        """Capacity (speed-1 node-equivalents) that serves the
        smoothed demand at target utilization (unclamped)."""
        return (self._smoothed_rate or 0.0) / self.target_utilization

    def desired_nodes(self, n_nodes: int) -> int:
        """Node count of the reference model that serves the smoothed
        demand at target load (the single-class convenience)."""
        want = self.desired_capacity()
        nodes = int(want) + (0 if want == int(want) else 1)
        return max(self.min_nodes, min(n_nodes, nodes))

    @staticmethod
    def _work_cost(model: NodePowerModel, target: float) -> float:
        """Energy per unit of speed-1 work at ``target`` utilization —
        the class-ranking key for boot/drain preference."""
        return model.power(target) / (target * model.speed_factor)

    def step(self, now: float, nodes: Sequence[FleetNode],
             on_ids: list[int]) -> None:
        """Close the epoch ending at ``now`` and adjust the fleet.

        ``on_ids`` is the fleet's live powered-on index list (ascending)
        and is mutated in place.
        """
        observed = self._epoch_demand_seconds / self.epoch_seconds
        self._epoch_demand_seconds = 0.0
        if self._smoothed_rate is None:
            self._smoothed_rate = observed
        else:
            self._smoothed_rate += self.ewma_alpha * (observed
                                                     - self._smoothed_rate)
        total_capacity = sum(n.model.speed_factor for n in nodes)
        want = min(total_capacity, self.desired_capacity())
        on_capacity = sum(nodes[i].model.speed_factor for i in on_ids)

        from repro.flightrec.context import current_recorder
        rec = current_recorder()
        log = (None if rec is None else
               {"booted": [], "drained": [], "rejected": []})
        if on_capacity < want or len(on_ids) < self.min_nodes:
            self._scale_up(now, nodes, on_ids, on_capacity, want, log)
            self._below_since = None
        elif self._can_shrink(nodes, on_ids, on_capacity, want):
            if self._below_since is None:
                self._below_since = now
            self._scale_down(now, nodes, on_ids, on_capacity, want, log)
        else:
            self._below_since = None
        self.decisions.append((now, len(on_ids)))
        if rec is not None:
            for i in log["booted"]:
                rec.events.append((now, "boot", i, None, None,
                                   {"reason": "scale_up"}))
            for i in log["drained"]:
                rec.events.append((now, "drain", i, None, None,
                                   {"reason": "scale_down"}))
            rec.events.append(
                (now, "scale", None, None, None,
                 {"on": len(on_ids), "want_capacity": want,
                  "on_capacity": on_capacity, **log}))

    def _scale_up(self, now: float, nodes: Sequence[FleetNode],
                  on_ids: list[int], on_capacity: float,
                  want: float, log=None) -> None:
        target = self.target_utilization
        off = sorted(
            (i for i in range(len(nodes)) if not nodes[i].on),
            key=lambda i: (self._work_cost(nodes[i].model, target), i))
        claimed_capacity = on_capacity
        claimed = 0
        booted: list[int] = []
        for i in off:
            if claimed_capacity >= want \
                    and len(on_ids) + claimed >= self.min_nodes:
                break
            # the claim sticks even when the node cannot boot yet — a
            # draining node (busy_until ahead of now) waits a turn
            claimed_capacity += nodes[i].model.speed_factor
            claimed += 1
            if nodes[i].busy_until <= now:
                nodes[i].power_on(now)
                booted.append(i)
            elif log is not None:
                log["rejected"].append([i, "draining"])
        on_ids.extend(booted)
        on_ids.sort()
        if log is not None:
            log["booted"].extend(booted)

    def _can_shrink(self, nodes: Sequence[FleetNode], on_ids: list[int],
                    on_capacity: float, want: float) -> bool:
        """Whether some powered-on node could be removed while keeping
        capacity at ``want`` and the count at ``min_nodes``."""
        if len(on_ids) - 1 < self.min_nodes:
            return False
        return any(on_capacity - nodes[i].model.speed_factor >= want
                   for i in on_ids)

    def emergency(self, now: float, nodes: Sequence[FleetNode],
                  on_ids: list[int],
                  downtime_seconds: float) -> list[int]:
        """React to a crash *now* instead of waiting for the epoch.

        Boots spare (powered-off, repaired, drained) nodes until the
        smoothed demand is covered again — but only nodes for which the
        outage is worth a power cycle: a crash shorter than a
        candidate's *own* break-even time costs less in queueing than
        the boot + drain lumps that replacement would burn, the same
        accounting that gates every scale-down.  Cheap-to-cycle classes
        therefore answer short outages that expensive classes sit out.
        Returns the indices booted; the boot energy is priced through
        :meth:`FleetNode.power_on` as usual.
        """
        total_capacity = sum(n.model.speed_factor for n in nodes)
        want = min(total_capacity, self.desired_capacity())
        on_capacity = sum(nodes[i].model.speed_factor for i in on_ids)
        target = self.target_utilization
        spares = sorted(
            (i for i in range(len(nodes)) if not nodes[i].on),
            key=lambda i: (self._work_cost(nodes[i].model, target), i))
        from repro.flightrec.context import current_recorder
        rec = current_recorder()
        rejected: list[list] = []
        booted: list[int] = []
        for i in spares:
            if on_capacity >= want \
                    and len(on_ids) + len(booted) >= self.min_nodes:
                break
            node = nodes[i]
            if downtime_seconds < node.model.breakeven_seconds():
                rejected.append([i, "breakeven"])
                continue
            if node.busy_until <= now:
                node.power_on(now)
                booted.append(i)
                on_capacity += node.model.speed_factor
            else:
                rejected.append([i, "draining"])
        if booted:
            on_ids.extend(booted)
            on_ids.sort()
            self.emergency_boots += len(booted)
            self.decisions.append((now, len(on_ids)))
        if rec is not None:
            for i in booted:
                rec.events.append((now, "boot", i, None, None,
                                   {"reason": "emergency"}))
            rec.events.append(
                (now, "emergency_scale", None, None, None,
                 {"downtime_seconds": downtime_seconds,
                  "want_capacity": want, "booted": booted,
                  "rejected": rejected}))
        return booted

    def _scale_down(self, now: float, nodes: Sequence[FleetNode],
                    on_ids: list[int], on_capacity: float,
                    want: float, log=None) -> None:
        if self._below_since is None:  # pragma: no cover - guarded
            return
        below_for = now - self._below_since
        cooldown = self.cooldown_epochs * self.epoch_seconds
        # costliest class first, tail-first within a class, and only
        # nodes whose pipes have fully drained — power_off would
        # (rightly) refuse a node with backlog
        target = self.target_utilization
        order = sorted(
            on_ids,
            key=lambda i: (self._work_cost(nodes[i].model, target), i),
            reverse=True)
        for i in order:
            if len(on_ids) - 1 < self.min_nodes:
                break
            node = nodes[i]
            if on_capacity - node.model.speed_factor < want:
                if log is not None:
                    log["rejected"].append([i, "capacity"])
                continue
            if below_for < max(cooldown, node.model.breakeven_seconds()):
                if log is not None:
                    log["rejected"].append([i, "breakeven"])
                continue
            if node.backlog(now) <= 0.0:
                node.power_off(now)
                on_ids.remove(i)
                on_capacity -= node.model.speed_factor
                if log is not None:
                    log["drained"].append(i)
            elif log is not None:
                log["rejected"].append([i, "backlog"])


def calibrated_drain_joules(
        sim, disks: Sequence["HardDisk"],
        resident_bytes: int = 64 * 1024 * 1024) -> float:
    """Meter what draining one node's state actually costs.

    Builds a one-move :class:`~repro.storage.partitioner.ConsolidationPlan`
    (evacuate ``resident_bytes`` of hot state off the released device,
    then spin it down) and executes it against real simulated disks via
    :func:`~repro.consolidation.migration.execute_consolidation`.  The
    metered migration energy is the drain lump a
    :class:`NodePowerModel` should charge per power-off.
    """
    from repro.consolidation.migration import execute_consolidation
    from repro.storage.partitioner import ConsolidationPlan, Move

    if len(disks) < 2:
        raise ServiceError("drain calibration needs a source and a target "
                           "disk")
    source, target = disks[0], disks[1]
    plan = ConsolidationPlan(
        assignments={"resident": target.spec.name},
        moves=[Move(partition="resident", source=source.spec.name,
                    target=target.spec.name, size_bytes=resident_bytes)],
        devices_kept=[target.spec.name],
        devices_released=[source.spec.name],
    )
    outcome = execute_consolidation(
        sim, plan, {d.spec.name: d for d in disks})
    return outcome.migration_energy_joules
