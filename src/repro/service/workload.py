"""Multi-tenant open-loop arrival streams for fleet serving.

The ROADMAP north star serves "heavy traffic from millions of users";
this module generates that traffic.  Each :class:`Tenant` is an
independent open-loop Poisson source (arrivals do not wait for
completions — the defining property of SLA-facing serving, as opposed
to the closed-loop TPC-H throughput test of Figure 1) with its own mix
over :class:`QueryClass` shapes and its own p95 SLA target.

Streams are materialized as flat numpy arrays rather than event-object
lists: a million-query stream is three ~8 MB arrays, which is what lets
``svc_policies`` sweep three dispatch policies over 10^6 queries in
seconds.  Generation is deterministic: tenant ``i`` under ``seed``
draws from ``numpy`` 's PCG64 seeded with ``SeedSequence([seed, i])``,
so adding or reordering *other* tenants never perturbs a tenant's
arrivals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.service.report import ServiceError


@dataclass(frozen=True)
class QueryClass:
    """One query shape: a name and its service demand on a speed-1 node."""

    name: str
    service_seconds: float

    def __post_init__(self) -> None:
        if self.service_seconds <= 0:
            raise ServiceError(
                f"query class {self.name!r}: service time must be positive")


@dataclass(frozen=True)
class Tenant:
    """One open-loop traffic source with an SLA.

    ``mix`` maps query-class names to relative weights (normalized at
    stream-build time).
    """

    name: str
    rate_per_s: float
    sla_p95_seconds: float
    mix: tuple[tuple[str, float], ...]
    #: batch tenants carry a *freshness budget* rather than a latency
    #: SLA: their ``sla_p95_seconds`` is the planned release-to-deadline
    #: gap, and the dispatcher's admission limit never rejects them —
    #: batch work is infinitely patient, so backlog-based rejection
    #: (a latency guard) does not apply.  See
    #: :mod:`repro.workloads.pipelines.tenants`.
    batch: bool = False

    def __post_init__(self) -> None:
        if self.rate_per_s <= 0:
            raise ServiceError(
                f"tenant {self.name!r}: arrival rate must be positive")
        if not self.mix:
            raise ServiceError(f"tenant {self.name!r}: empty query mix")
        if any(w < 0 for _, w in self.mix) or \
                sum(w for _, w in self.mix) <= 0:
            raise ServiceError(
                f"tenant {self.name!r}: mix weights must be non-negative "
                "and sum > 0")


#: The default serving mix: a latency-sensitive dashboard tenant, a
#: mid-weight reporting tenant, and a heavy analytics tenant.  The
#: heavy tail (2.5 s analytic scans amid 50 ms lookups) is what makes
#: dispatch policy matter: an oblivious router queues cheap queries
#: behind expensive ones, a backlog-aware one does not.
DEFAULT_CLASSES: tuple[QueryClass, ...] = (
    QueryClass("point", 0.05),
    QueryClass("report", 0.30),
    QueryClass("analytic", 2.50),
)

DEFAULT_TENANTS: tuple[Tenant, ...] = (
    Tenant("dashboard", rate_per_s=40.0, sla_p95_seconds=2.0,
           mix=(("point", 1.0),)),
    Tenant("reporting", rate_per_s=6.0, sla_p95_seconds=4.0,
           mix=(("point", 0.2), ("report", 0.8))),
    Tenant("analytics", rate_per_s=0.4, sla_p95_seconds=15.0,
           mix=(("report", 0.2), ("analytic", 0.8))),
)


@dataclass
class StreamColumns:
    """The marshalled view of a stream both serving engines consume.

    ``times``/``service_seconds``/``sla_seconds`` are the numpy columns
    the vectorized event core batches over; :meth:`lists` hands the
    reference loop the same data as plain Python lists (scalar float
    reads off a list are ~2x faster than off an ndarray, which is why
    the loop engine always worked on ``.tolist()`` copies).  Built once
    per stream and cached, so repeated simulations — and the
    faults engine — stop re-marshalling per call.
    """

    #: arrival instants, ascending (numpy float64 view)
    times: np.ndarray
    #: per-arrival service demand on a speed-1 node
    service_seconds: np.ndarray
    #: per-arrival tenant index
    tenant_index: np.ndarray
    #: per-arrival p95 SLA target (tenant's, broadcast per arrival)
    sla_seconds: np.ndarray
    #: per-arrival batch flag (``Tenant.batch`` broadcast), or None
    #: when no tenant is a batch tenant — the hot paths test for None
    #: instead of scanning an all-False column
    batch_flags: Optional[np.ndarray] = None
    _lists: Optional[tuple[list, list, list]] = \
        field(default=None, repr=False, compare=False)

    def lists(self) -> tuple[list[float], list[float], list[float]]:
        """``(times, service_seconds, sla_seconds)`` as Python lists —
        the reference loop's marshalling, materialized once."""
        if self._lists is None:
            self._lists = (self.times.tolist(),
                           self.service_seconds.tolist(),
                           self.sla_seconds.tolist())
        return self._lists

    def __len__(self) -> int:
        return len(self.times)


@dataclass
class ArrivalStream:
    """A merged, time-ordered arrival sequence across all tenants."""

    tenants: tuple[Tenant, ...]
    classes: tuple[QueryClass, ...]
    #: arrival instants, ascending (seconds)
    times: np.ndarray
    #: per-arrival service demand on a speed-1 node (seconds)
    service_seconds: np.ndarray
    #: per-arrival tenant index into :attr:`tenants`
    tenant_index: np.ndarray
    #: per-arrival class index into :attr:`classes`
    class_index: np.ndarray
    _columns: Optional[StreamColumns] = \
        field(default=None, init=False, repr=False, compare=False)

    def __len__(self) -> int:
        return len(self.times)

    def columns(self) -> StreamColumns:
        """The columnar (numpy) view of this stream, built once.

        Both serving engines marshal through this accessor: the
        vectorized event core consumes the arrays directly, the
        reference loop takes :meth:`StreamColumns.lists`.  The
        ``sla_seconds`` column is the per-arrival broadcast of each
        tenant's p95 target, replacing the per-call ``sla_of`` rebuild
        the engines used to repeat."""
        if self._columns is None:
            sla_of = np.array([t.sla_p95_seconds for t in self.tenants])
            batch_of = np.array([t.batch for t in self.tenants])
            self._columns = StreamColumns(
                times=self.times,
                service_seconds=self.service_seconds,
                tenant_index=self.tenant_index,
                sla_seconds=sla_of[self.tenant_index],
                batch_flags=(batch_of[self.tenant_index]
                             if batch_of.any() else None),
            )
        return self._columns

    @property
    def duration_seconds(self) -> float:
        """Span from time zero to the last arrival."""
        return float(self.times[-1]) if len(self.times) else 0.0

    @property
    def offered_load_node_seconds_per_s(self) -> float:
        """Mean service demand per wall second (node-equivalents)."""
        if self.duration_seconds <= 0:
            raise ServiceError("empty stream has no offered load")
        return float(self.service_seconds.sum()) / self.duration_seconds


def _tenant_counts(tenants: Sequence[Tenant], total: int) -> list[int]:
    """Split ``total`` arrivals across tenants proportional to rate
    (largest-remainder rounding, so counts sum exactly to ``total``)."""
    rates = [t.rate_per_s for t in tenants]
    whole = sum(rates)
    raw = [total * r / whole for r in rates]
    counts = [int(x) for x in raw]
    remainders = sorted(range(len(raw)),
                        key=lambda i: (raw[i] - counts[i], -i),
                        reverse=True)
    for i in remainders[: total - sum(counts)]:
        counts[i] += 1
    return counts


def build_stream(queries: int,
                 tenants: Sequence[Tenant] = DEFAULT_TENANTS,
                 classes: Sequence[QueryClass] = DEFAULT_CLASSES,
                 seed: int = 0) -> ArrivalStream:
    """Generate a merged multi-tenant Poisson stream of ``queries``."""
    if queries < 1:
        raise ServiceError("need at least one query")
    if not tenants:
        raise ServiceError("need at least one tenant")
    class_of = {c.name: i for i, c in enumerate(classes)}
    service = np.array([c.service_seconds for c in classes])

    chunks_t, chunks_c, chunks_tenant = [], [], []
    for i, (tenant, n) in enumerate(
            zip(tenants, _tenant_counts(tenants, queries))):
        if n == 0:
            continue
        for name, _ in tenant.mix:
            if name not in class_of:
                raise ServiceError(
                    f"tenant {tenant.name!r} mixes unknown query class "
                    f"{name!r}")
        rng = np.random.default_rng(np.random.SeedSequence([seed, i]))
        times = rng.exponential(1.0 / tenant.rate_per_s, n).cumsum()
        weights = np.array([w for _, w in tenant.mix], dtype=float)
        picks = rng.choice(len(tenant.mix), size=n,
                           p=weights / weights.sum())
        cls = np.array([class_of[name] for name, _ in tenant.mix])[picks]
        chunks_t.append(times)
        chunks_c.append(cls)
        chunks_tenant.append(np.full(n, i, dtype=np.int32))

    times = np.concatenate(chunks_t)
    cls = np.concatenate(chunks_c).astype(np.int32)
    tenant_idx = np.concatenate(chunks_tenant)
    order = np.argsort(times, kind="stable")
    times = times[order]
    cls = cls[order]
    return ArrivalStream(
        tenants=tuple(tenants),
        classes=tuple(classes),
        times=times,
        service_seconds=service[cls],
        tenant_index=tenant_idx[order],
        class_index=cls,
    )


def build_diurnal_stream(day_seconds: float,
                         peak_seconds: float,
                         tenants: Sequence[Tenant] = DEFAULT_TENANTS,
                         classes: Sequence[QueryClass] = DEFAULT_CLASSES,
                         peak_load: float = 1.0,
                         offpeak_load: float = 0.15,
                         seed: int = 0) -> ArrivalStream:
    """Generate a two-phase diurnal multi-tenant stream.

    The homogeneous-Poisson :func:`build_stream` has no notion of "off
    peak", which makes the batch-ETL question unanswerable — delaying
    work into a window identical to the one it left saves nothing.
    This builder carves the ``[0, day_seconds)`` window into a *peak*
    phase ``[0, peak_seconds)`` and a *trough* ``[peak_seconds,
    day_seconds)``, scaling every tenant's rate by ``peak_load`` and
    ``offpeak_load`` respectively.

    Each (tenant, phase) cell is a *conditioned* Poisson process:
    ``round(rate * load * phase_length)`` arrivals placed as sorted
    uniforms over the phase window — exact phase boundaries,
    deterministic counts, and per-cell ``SeedSequence([seed, i,
    phase])`` lanes, so changing one phase's load (or adding tenants)
    never perturbs another cell's arrivals.  Tenants whose cells are
    all empty are dropped from the stream (per-tenant latency
    quantiles are undefined over zero arrivals).
    """
    if day_seconds <= 0:
        raise ServiceError("day_seconds must be positive")
    if not 0 < peak_seconds < day_seconds:
        raise ServiceError(
            "peak_seconds must fall inside the day window")
    if peak_load < 0 or offpeak_load < 0:
        raise ServiceError("phase load multipliers cannot be negative")
    if not tenants:
        raise ServiceError("need at least one tenant")
    class_of = {c.name: i for i, c in enumerate(classes)}
    service = np.array([c.service_seconds for c in classes])
    phases = ((0.0, peak_seconds, peak_load),
              (peak_seconds, day_seconds, offpeak_load))

    kept: list[Tenant] = []
    chunks_t, chunks_c, chunks_tenant = [], [], []
    for i, tenant in enumerate(tenants):
        for name, _ in tenant.mix:
            if name not in class_of:
                raise ServiceError(
                    f"tenant {tenant.name!r} mixes unknown query class "
                    f"{name!r}")
        t_chunks, c_chunks = [], []
        for phase, (start, end, load) in enumerate(phases):
            n = int(round(tenant.rate_per_s * load * (end - start)))
            if n == 0:
                continue
            rng = np.random.default_rng(
                np.random.SeedSequence([seed, i, phase]))
            times = start + np.sort(rng.uniform(0.0, end - start, n))
            weights = np.array([w for _, w in tenant.mix], dtype=float)
            picks = rng.choice(len(tenant.mix), size=n,
                               p=weights / weights.sum())
            cls = np.array([class_of[name]
                            for name, _ in tenant.mix])[picks]
            t_chunks.append(times)
            c_chunks.append(cls)
        if not t_chunks:
            continue
        n_tenant = sum(len(c) for c in t_chunks)
        chunks_t.extend(t_chunks)
        chunks_c.extend(c_chunks)
        chunks_tenant.append(np.full(n_tenant, len(kept), dtype=np.int32))
        kept.append(tenant)

    if not kept:
        raise ServiceError("diurnal stream has no arrivals: raise a "
                           "phase load or the day length")
    times = np.concatenate(chunks_t)
    cls = np.concatenate(chunks_c).astype(np.int32)
    tenant_idx = np.concatenate(chunks_tenant)
    order = np.argsort(times, kind="stable")
    times = times[order]
    cls = cls[order]
    return ArrivalStream(
        tenants=tuple(kept),
        classes=tuple(classes),
        times=times,
        service_seconds=service[cls],
        tenant_index=tenant_idx[order],
        class_index=cls,
    )
