"""Runner-facing entry points for the serving subsystem.

:func:`service_point` is the physics of one ``svc_*`` sweep point —
one dispatch policy over one generated arrival stream — and
:func:`svc_aggregate` folds a policy sweep back into the
figure-level :class:`~repro.service.report.ServiceSweepResult`.  Both
are registered in :mod:`repro.runner.registry`, so::

    python -m repro.runner run svc_policies

serves the full 3-policy × 350k-query grid (1.05 M queries) through
the ordinary Runner machinery: process pool, content-addressed cache,
structured events, optional telemetry traces.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.service.autoscale import Autoscaler
from repro.service.dispatch import make_policy
from repro.service.fleet import simulate_service
from repro.service.node import NodePowerModel
from repro.service.report import ServiceSweepResult
from repro.service.workload import build_stream


def service_point(policy: str = "power_aware",
                  queries: int = 350_000,
                  nodes: int = 16,
                  profile: str = "commodity",
                  pack_backlog_seconds: float = 0.2,
                  admission_limit_seconds: Optional[float] = None,
                  target_utilization: float = 0.55,
                  epoch_seconds: float = 30.0,
                  min_nodes: int = 2,
                  seed: int = 0) -> Any:
    """Serve one generated multi-tenant stream under one policy.

    The node power curve is calibrated from the named hardware
    ``profile`` (idle/peak watts read off the metered server model), so
    fleet Joules are in the same currency as every single-node
    experiment.
    """
    model = NodePowerModel.from_server(profile)
    stream = build_stream(queries, seed=seed)
    kwargs: dict[str, Any] = {
        "admission_limit_seconds": admission_limit_seconds}
    if policy == "power_aware":
        kwargs["pack_backlog_seconds"] = pack_backlog_seconds
    dispatch = make_policy(policy, **kwargs)
    autoscaler = Autoscaler(
        model,
        epoch_seconds=epoch_seconds,
        target_utilization=target_utilization,
        min_nodes=min_nodes,
    ) if dispatch.autoscaled else None
    return simulate_service(stream, n_nodes=nodes, policy=dispatch,
                            model=model, autoscaler=autoscaler)


def svc_aggregate(points: Sequence[Any]) -> ServiceSweepResult:
    """Fold a finished policy sweep into one comparable result."""
    return ServiceSweepResult(reports=[p.report for p in points])
