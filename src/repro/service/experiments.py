"""Runner-facing entry points for the serving subsystem.

:func:`service_point` is the physics of one ``svc_*`` sweep point —
one dispatch policy over one generated arrival stream — and
:func:`svc_aggregate` folds a policy sweep back into the
figure-level :class:`~repro.service.report.ServiceSweepResult`.  Both
are registered in :mod:`repro.runner.registry`, so::

    python -m repro.runner run svc_policies

serves the full 3-policy × 350k-query grid (1.05 M queries) through
the ordinary Runner machinery: process pool, content-addressed cache,
structured events, optional telemetry traces.

:func:`hetero_point` is the heterogeneous-fleet analogue — one named
fleet *composition* (:data:`COMPOSITIONS`) serving one load- and
SLA-scaled stream — and :func:`hetero_aggregate` folds the
``svc_hetero`` composition × load × SLA grid into a
:class:`HeteroSweepResult`, the experiment that reproduces the
wimpy-vs-beefy crossover of Lang et al. (arXiv 1208.1933): wimpy
fleets win Joules-per-query at low utilization on their lower idle
floor, beefy fleets win once utilization (or a tightened SLA) makes
the wimpy marginal cost — watts divided by a sub-unity speed factor —
the dominant term.

:func:`pvc_qed_point` runs the Lang & Patel (arXiv 0909.1767)
mechanism sweep — the ``power_aware`` baseline against the PVC
frequency governor, the QED batcher, and their composition — and
:func:`pvc_qed_aggregate` folds the config × SLA-headroom grid into a
:class:`PVCQEDSweepResult` whose :meth:`~PVCQEDSweepResult.headline`
states the acceptance verdict: some mechanism config strictly beats
the baseline on Joules/query while every tenant SLA holds.

:func:`mega_point` is the fleet-scale point — 10M+ queries over 256+
nodes, tractable because ``engine="auto"`` routes onto the vectorized
array-of-events core — and :func:`mega_calibration_point` races both
engines on one stream, proves their reports byte-identical, and
returns a :class:`MegaCalibrationReport` pricing the speedup.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Mapping, Optional, Sequence

from repro.service.autoscale import Autoscaler
from repro.service.dispatch import make_policy, policy_knob_names
from repro.service.fleet import simulate_service
from repro.service.node import NodePowerModel
from repro.service.report import (ServiceError, ServiceReport,
                                  ServiceSweepResult)
from repro.service.spec import FleetSpec
from repro.service.workload import DEFAULT_TENANTS, build_stream

#: named fleet compositions for the ``svc_hetero`` sweep, sized for
#: equal speed-1 capacity (beefy 9.0, wimpy 20 × 0.45 = 9.0, mixed
#: 5 + 9 × 0.45 = 9.05) so the axis compares *composition*, not size
COMPOSITIONS: dict[str, tuple[tuple[str, int], ...]] = {
    "beefy": (("beefy", 9),),
    "wimpy": (("wimpy", 20),),
    "mixed": (("beefy", 5), ("wimpy", 9)),
}


def composition_fleet(composition: str) -> FleetSpec:
    """Resolve a :data:`COMPOSITIONS` name into its :class:`FleetSpec`."""
    try:
        parts = COMPOSITIONS[composition]
    except KeyError:
        raise ServiceError(
            f"unknown composition {composition!r}; known: "
            f"{', '.join(sorted(COMPOSITIONS))}") from None
    return FleetSpec.of(**dict(parts))


def _dispatch_for(policy: str, knobs: Mapping[str, Any]):
    """Build the policy, passing only the knobs its factory declares."""
    accepted = policy_knob_names(policy)
    return make_policy(policy, **{k: v for k, v in knobs.items()
                                  if k in accepted})


def service_point(policy: str = "power_aware",
                  queries: int = 350_000,
                  nodes: int = 16,
                  profile: str = "commodity",
                  pack_backlog_seconds: float = 0.2,
                  admission_limit_seconds: Optional[float] = None,
                  sla_slack_fraction: float = 1.0,
                  target_utilization: float = 0.55,
                  epoch_seconds: float = 30.0,
                  min_nodes: int = 2,
                  seed: int = 0) -> Any:
    """Serve one generated multi-tenant stream under one policy.

    The node power curve is calibrated from the named hardware
    ``profile`` (idle/peak watts read off the metered server model), so
    fleet Joules are in the same currency as every single-node
    experiment.  Policy knobs are filtered through
    :func:`~repro.service.dispatch.policy_knob_names`, so each policy
    only sees the knobs its factory declares.
    """
    model = NodePowerModel.from_server(profile)
    fleet = FleetSpec.homogeneous(nodes, model)
    stream = build_stream(queries, seed=seed)
    dispatch = _dispatch_for(policy, {
        "pack_backlog_seconds": pack_backlog_seconds,
        "admission_limit_seconds": admission_limit_seconds,
        "sla_slack_fraction": sla_slack_fraction,
    })
    autoscaler = Autoscaler(
        model,
        epoch_seconds=epoch_seconds,
        target_utilization=target_utilization,
        min_nodes=min_nodes,
    ) if dispatch.autoscaled else None
    return simulate_service(stream, fleet=fleet, policy=dispatch,
                            autoscaler=autoscaler)


def hetero_point(composition: str = "mixed",
                 policy: str = "power_aware",
                 queries: int = 40_000,
                 load: float = 1.0,
                 sla_scale: float = 1.0,
                 pack_backlog_seconds: float = 0.2,
                 admission_limit_seconds: Optional[float] = None,
                 sla_slack_fraction: float = 1.0,
                 target_utilization: float = 0.55,
                 epoch_seconds: float = 30.0,
                 min_nodes: int = 2,
                 seed: int = 0) -> Any:
    """Serve one load- and SLA-scaled stream on one named composition.

    ``load`` multiplies every tenant's arrival rate (per-tenant
    ``SeedSequence`` lanes keep the stream *structure* fixed while the
    inter-arrival gaps scale), and ``sla_scale`` multiplies every
    tenant's p95 SLA — the axis that prices wimpy nodes out of
    latency-tight regimes even where their Joules would win.
    """
    if load <= 0:
        raise ServiceError("load multiplier must be positive")
    if sla_scale <= 0:
        raise ServiceError("sla_scale must be positive")
    fleet = composition_fleet(composition)
    tenants = tuple(
        replace(t, rate_per_s=t.rate_per_s * load,
                sla_p95_seconds=t.sla_p95_seconds * sla_scale)
        for t in DEFAULT_TENANTS)
    stream = build_stream(queries, tenants=tenants, seed=seed)
    dispatch = _dispatch_for(policy, {
        "pack_backlog_seconds": pack_backlog_seconds,
        "admission_limit_seconds": admission_limit_seconds,
        "sla_slack_fraction": sla_slack_fraction,
    })
    autoscaler = Autoscaler(
        fleet.classes[0].model,
        epoch_seconds=epoch_seconds,
        target_utilization=target_utilization,
        min_nodes=min_nodes,
    ) if dispatch.autoscaled else None
    return simulate_service(stream, fleet=fleet, policy=dispatch,
                            autoscaler=autoscaler)


#: the ``svc_pvc_qed`` mechanism axis: the PR-4 baseline, each
#: 0909.1767 mechanism alone, and the stacked composition
PVC_QED_CONFIGS: tuple[str, ...] = ("power_aware", "pvc", "qed",
                                    "pvc_qed")


def _pvc_qed_policy(config: str,
                    sla_headroom: float,
                    hold_seconds: float,
                    shared_fraction: float,
                    max_batch: int,
                    pack_backlog_seconds: float,
                    admission_limit_seconds: Optional[float]):
    """Build one mechanism config over a shared power_aware router."""
    from repro.service.pvc import PVCPolicy
    from repro.service.qed import QEDPolicy
    if config == "power_aware":
        return make_policy("power_aware",
                           pack_backlog_seconds=pack_backlog_seconds,
                           admission_limit_seconds=admission_limit_seconds)
    if config == "pvc":
        return PVCPolicy(sla_headroom=sla_headroom,
                         admission_limit_seconds=admission_limit_seconds,
                         pack_backlog_seconds=pack_backlog_seconds)
    if config == "qed":
        return QEDPolicy(hold_seconds=hold_seconds,
                         sla_headroom=sla_headroom,
                         shared_fraction=shared_fraction,
                         max_batch=max_batch,
                         admission_limit_seconds=admission_limit_seconds,
                         pack_backlog_seconds=pack_backlog_seconds)
    if config == "pvc_qed":
        return QEDPolicy(
            inner=PVCPolicy(sla_headroom=sla_headroom,
                            pack_backlog_seconds=pack_backlog_seconds),
            hold_seconds=hold_seconds,
            sla_headroom=sla_headroom,
            shared_fraction=shared_fraction,
            max_batch=max_batch,
            admission_limit_seconds=admission_limit_seconds)
    raise ServiceError(
        f"unknown pvc_qed config {config!r}; known: "
        f"{', '.join(PVC_QED_CONFIGS)}")


def pvc_qed_point(config: str = "power_aware",
                  queries: int = 40_000,
                  nodes: int = 16,
                  profile: str = "commodity",
                  sla_headroom: float = 0.6,
                  hold_seconds: float = 0.5,
                  shared_fraction: float = 0.7,
                  max_batch: int = 32,
                  pack_backlog_seconds: float = 0.2,
                  admission_limit_seconds: Optional[float] = None,
                  target_utilization: float = 0.55,
                  epoch_seconds: float = 30.0,
                  min_nodes: int = 2,
                  seed: int = 0) -> Any:
    """Serve one stream under one PVC/QED mechanism configuration.

    Every ``config`` routes through the same ``power_aware`` packer on
    the same calibrated homogeneous fleet, so differences are the
    mechanisms', not the router's.  ``sla_headroom`` is the shared
    latency budget both mechanisms spend (the PVC governor's slowdown
    allowance and the QED hold-window cap), which makes it the sweep's
    Pareto knob: small headroom hugs the baseline latency, large
    headroom buys the deepest Joules/query cuts.
    """
    model = NodePowerModel.from_server(profile)
    fleet = FleetSpec.homogeneous(nodes, model)
    stream = build_stream(queries, seed=seed)
    dispatch = _pvc_qed_policy(
        config, sla_headroom, hold_seconds, shared_fraction, max_batch,
        pack_backlog_seconds, admission_limit_seconds)
    autoscaler = Autoscaler(
        model,
        epoch_seconds=epoch_seconds,
        target_utilization=target_utilization,
        min_nodes=min_nodes,
    ) if dispatch.autoscaled else None
    return simulate_service(stream, fleet=fleet, policy=dispatch,
                            autoscaler=autoscaler)


def _mega_tenants(load: float):
    """The :data:`DEFAULT_TENANTS` mix with every arrival rate
    multiplied by ``load`` — the mega experiments keep the per-tenant
    SLAs untouched so the stream is *denser*, not *tighter*."""
    if load <= 0:
        raise ServiceError("load multiplier must be positive")
    return tuple(replace(t, rate_per_s=t.rate_per_s * load)
                 for t in DEFAULT_TENANTS)


def mega_point(policy: str = "power_aware",
               queries: int = 10_000_000,
               nodes: int = 256,
               load: float = 30.0,
               profile: str = "commodity",
               engine: str = "auto",
               pack_backlog_seconds: float = 0.2,
               admission_limit_seconds: Optional[float] = None,
               sla_slack_fraction: float = 1.0,
               target_utilization: float = 0.55,
               epoch_seconds: float = 30.0,
               min_nodes: int = 2,
               seed: int = 0) -> Any:
    """Serve one fleet-scale multi-tenant stream under one policy.

    The ``svc_mega`` scale point: tens of millions of queries over
    hundreds of nodes, which is only tractable because ``engine="auto"``
    routes eligible configurations onto the vectorized array-of-events
    core (:mod:`repro.service.engine`).  ``load`` multiplies every
    tenant's arrival rate so a 256-node fleet actually has work;
    per-tenant SLAs stay at their defaults.  ``engine="loop"`` forces
    the reference core — same report, reference wall-clock — which is
    what the calibration experiment uses to price the speedup.
    """
    model = NodePowerModel.from_server(profile)
    fleet = FleetSpec.homogeneous(nodes, model)
    stream = build_stream(queries, tenants=_mega_tenants(load),
                          seed=seed)
    dispatch = _dispatch_for(policy, {
        "pack_backlog_seconds": pack_backlog_seconds,
        "admission_limit_seconds": admission_limit_seconds,
        "sla_slack_fraction": sla_slack_fraction,
    })
    autoscaler = Autoscaler(
        model,
        epoch_seconds=epoch_seconds,
        target_utilization=target_utilization,
        min_nodes=min_nodes,
    ) if dispatch.autoscaled else None
    return simulate_service(stream, fleet=fleet, policy=dispatch,
                            autoscaler=autoscaler, engine=engine)


@dataclass
class MegaCalibrationReport:
    """Both engines over one stream: proof of identity, price of each.

    ``loop_seconds`` and ``event_seconds`` are host wall-clock and vary
    run to run; everything else is simulation output and deterministic.
    The constructor refuses ``identical=False`` — a calibration whose
    engines disagree is not a slower data point, it is a broken build,
    and :func:`mega_calibration_point` raises before constructing one.
    """

    policy: str
    queries: int
    nodes: int
    loop_seconds: float
    event_seconds: float
    identical: bool
    makespan_seconds: float
    energy_joules: float
    queries_completed: int
    p95_latency_seconds: float

    def __post_init__(self) -> None:
        if not self.identical:
            raise ServiceError(
                "calibration engines disagree: the event core must be "
                "byte-identical to the reference loop")

    @property
    def speedup(self) -> float:
        """Reference-loop seconds per event-core second (>= 1 is a
        win; the svc_mega acceptance bar is 10x at the 1M point)."""
        return (self.loop_seconds / self.event_seconds
                if self.event_seconds > 0 else float("inf"))

    def to_dict(self) -> dict[str, Any]:
        return {"policy": self.policy,
                "queries": self.queries,
                "nodes": self.nodes,
                "loop_seconds": self.loop_seconds,
                "event_seconds": self.event_seconds,
                "speedup": self.speedup,
                "identical": self.identical,
                "makespan_seconds": self.makespan_seconds,
                "energy_joules": self.energy_joules,
                "queries_completed": self.queries_completed,
                "p95_latency_seconds": self.p95_latency_seconds}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MegaCalibrationReport":
        return cls(
            policy=str(data.get("policy", "power_aware")),
            queries=int(data.get("queries", 0)),
            nodes=int(data.get("nodes", 0)),
            loop_seconds=float(data.get("loop_seconds", 0.0)),
            event_seconds=float(data.get("event_seconds", 0.0)),
            identical=bool(data.get("identical", True)),
            makespan_seconds=float(data.get("makespan_seconds", 0.0)),
            energy_joules=float(data.get("energy_joules", 0.0)),
            queries_completed=int(data.get("queries_completed", 0)),
            p95_latency_seconds=float(
                data.get("p95_latency_seconds", 0.0)))


def mega_calibration_point(policy: str = "power_aware",
                           queries: int = 1_000_000,
                           nodes: int = 256,
                           load: float = 30.0,
                           profile: str = "commodity",
                           pack_backlog_seconds: float = 0.2,
                           admission_limit_seconds: Optional[float] = None,
                           sla_slack_fraction: float = 1.0,
                           target_utilization: float = 0.55,
                           epoch_seconds: float = 30.0,
                           min_nodes: int = 2,
                           seed: int = 0) -> MegaCalibrationReport:
    """Race the reference loop against the event core on one stream.

    Runs the *same* generated stream through ``engine="loop"`` and
    ``engine="event"`` with independently built policy/autoscaler state,
    times each with :func:`time.perf_counter`, and raises
    :class:`ServiceError` unless the two :class:`ServiceReport` dicts
    are byte-identical.  Wall-clock fields are host-informational (the
    observatory never gates them); the simulation fields carried along
    (makespan, Joules, completions, p95) are deterministic and *are*
    gated, so a ledgered calibration still pins the physics.
    """
    from time import perf_counter

    from repro.flightrec.context import current_recorder
    from repro.telemetry import current_collector
    if current_collector() is not None or current_recorder() is not None:
        raise ServiceError(
            "the engine calibration races engine='event' against "
            "engine='loop', and the event core cannot host telemetry "
            "or flight-recording observers: run svc_mega_calibration "
            "without --trace/--record (the observatory records it "
            "with --no-trace)")

    model = NodePowerModel.from_server(profile)
    stream = build_stream(queries, tenants=_mega_tenants(load),
                          seed=seed)
    knobs = {
        "pack_backlog_seconds": pack_backlog_seconds,
        "admission_limit_seconds": admission_limit_seconds,
        "sla_slack_fraction": sla_slack_fraction,
    }

    def race(engine: str) -> tuple[Any, float]:
        # fresh fleet/policy/autoscaler per engine: routers and
        # autoscalers are stateful, and a shared instance would leak
        # one engine's cursor into the other's run
        fleet = FleetSpec.homogeneous(nodes, model)
        dispatch = _dispatch_for(policy, knobs)
        autoscaler = Autoscaler(
            model,
            epoch_seconds=epoch_seconds,
            target_utilization=target_utilization,
            min_nodes=min_nodes,
        ) if dispatch.autoscaled else None
        start = perf_counter()
        report = simulate_service(stream, fleet=fleet, policy=dispatch,
                                  autoscaler=autoscaler, engine=engine)
        return report, perf_counter() - start

    loop_report, loop_seconds = race("loop")
    event_report, event_seconds = race("event")
    identical = loop_report.to_dict() == event_report.to_dict()
    if not identical:
        raise ServiceError(
            f"engine calibration diverged for policy {policy!r}: the "
            "event core's report is not byte-identical to the "
            "reference loop's")
    return MegaCalibrationReport(
        policy=policy,
        queries=queries,
        nodes=nodes,
        loop_seconds=loop_seconds,
        event_seconds=event_seconds,
        identical=identical,
        makespan_seconds=loop_report.makespan_seconds,
        energy_joules=loop_report.energy_joules,
        queries_completed=loop_report.queries_completed,
        p95_latency_seconds=loop_report.p95_latency_seconds)


def svc_aggregate(points: Sequence[Any]) -> ServiceSweepResult:
    """Fold a finished policy sweep into one comparable result."""
    return ServiceSweepResult(reports=[p.report for p in points])


@dataclass
class HeteroSweepResult:
    """A composition × load × SLA sweep folded into one frontier.

    Parallel arrays: point *k* ran ``compositions[k]`` at load
    multiplier ``loads[k]`` and SLA scale ``sla_scales[k]`` and
    produced ``reports[k]``.  :meth:`crossover_rows` reads the
    arXiv 1208.1933 verdict off the grid — which composition wins
    Joules per query at each operating point — and :meth:`headline`
    states whether the winner actually flips across the load axis.
    """

    compositions: list[str]
    loads: list[float]
    sla_scales: list[float]
    reports: list[ServiceReport]

    def __post_init__(self) -> None:
        n = len(self.reports)
        if not (len(self.compositions) == len(self.loads)
                == len(self.sla_scales) == n):
            raise ServiceError(
                "hetero sweep arrays disagree: "
                f"{len(self.compositions)} compositions, "
                f"{len(self.loads)} loads, {len(self.sla_scales)} "
                f"sla_scales, {n} reports")

    def report_at(self, composition: str, load: float,
                  sla_scale: float) -> ServiceReport:
        for c, l, s, report in zip(self.compositions, self.loads,
                                   self.sla_scales, self.reports):
            if c == composition and l == load and s == sla_scale:
                return report
        ran = ", ".join(f"({c}, {l}, {s})"
                        for c, l, s in zip(self.compositions, self.loads,
                                           self.sla_scales))
        raise ServiceError(
            f"sweep has no point ({composition!r}, {load!r}, "
            f"{sla_scale!r}); ran: {ran}")

    def operating_points(self) -> list[tuple[float, float]]:
        """Distinct (load, sla_scale) pairs, relaxed-SLA first, then
        ascending load."""
        pairs = sorted({(l, s) for l, s in zip(self.loads,
                                               self.sla_scales)},
                       key=lambda p: (-p[1], p[0]))
        return pairs

    def rows(self) -> list[tuple]:
        """Catalog rows: composition, load, sla_scale, J/query, p95,
        SLA verdict, energy."""
        out = []
        for c, l, s, r in zip(self.compositions, self.loads,
                              self.sla_scales, self.reports):
            out.append((c, l, s, r.joules_per_query,
                        r.p95_latency_seconds,
                        "met" if r.slas_met else "MISSED",
                        r.energy_joules))
        return out

    def crossover_rows(self) -> list[tuple]:
        """Per operating point: beefy J/q, wimpy J/q, and the winner
        (SLA-respecting: a composition that misses SLAs cannot win)."""
        rows = []
        for load, sla_scale in self.operating_points():
            try:
                beefy = self.report_at("beefy", load, sla_scale)
                wimpy = self.report_at("wimpy", load, sla_scale)
            except ServiceError:
                continue
            if wimpy.slas_met and not beefy.slas_met:
                winner = "wimpy"
            elif beefy.slas_met and not wimpy.slas_met:
                winner = "beefy"
            else:
                winner = ("wimpy" if wimpy.joules_per_query
                          < beefy.joules_per_query else "beefy")
            rows.append((load, sla_scale, beefy.joules_per_query,
                         wimpy.joules_per_query, winner))
        return rows

    def headline(self) -> dict[str, Any]:
        """The acceptance numbers: winners at the load extremes of the
        most relaxed SLA, and whether the crossover actually happens."""
        rows = self.crossover_rows()
        if not rows:
            raise ServiceError(
                "sweep has no (beefy, wimpy) pair at any operating "
                "point; nothing to cross over")
        relaxed = max(r[1] for r in rows)
        at_relaxed = [r for r in rows if r[1] == relaxed]
        low, high = at_relaxed[0], at_relaxed[-1]
        return {
            "low_load": low[0],
            "low_load_winner": low[4],
            "high_load": high[0],
            "high_load_winner": high[4],
            "crossover": low[4] != high[4],
            "sla_scale": relaxed,
        }

    def to_dict(self) -> dict[str, Any]:
        return {"compositions": list(self.compositions),
                "loads": list(self.loads),
                "sla_scales": list(self.sla_scales),
                "reports": [r.to_dict() for r in self.reports]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "HeteroSweepResult":
        return cls(
            compositions=list(data.get("compositions", [])),
            loads=list(data.get("loads", [])),
            sla_scales=list(data.get("sla_scales", [])),
            reports=[ServiceReport.from_dict(r)
                     for r in data.get("reports", [])])


@dataclass
class PVCQEDSweepResult:
    """A mechanism × SLA-headroom sweep folded into a Pareto frontier.

    Parallel arrays: point *k* ran mechanism ``configs[k]`` with
    latency budget ``sla_headrooms[k]`` and produced ``reports[k]``.
    :meth:`pareto_rows` keeps the (Joules/query, p95) non-dominated
    SLA-respecting points, and :meth:`headline` states the 0909.1767
    verdict the CI gate pins: the best mechanism config's Joules/query
    against the ``power_aware`` baseline's, with every tenant SLA met.
    """

    configs: list[str]
    sla_headrooms: list[float]
    reports: list[ServiceReport]

    def __post_init__(self) -> None:
        n = len(self.reports)
        if not (len(self.configs) == len(self.sla_headrooms) == n):
            raise ServiceError(
                f"pvc_qed sweep arrays disagree: {len(self.configs)} "
                f"configs, {len(self.sla_headrooms)} sla_headrooms, "
                f"{n} reports")

    def baseline(self) -> ServiceReport:
        """The ``power_aware`` reference report (headroom-invariant:
        the baseline ignores the knob, so any instance serves)."""
        for config, report in zip(self.configs, self.reports):
            if config == "power_aware":
                return report
        raise ServiceError(
            "sweep ran no power_aware baseline; nothing to dominate")

    def rows(self) -> list[tuple]:
        """Catalog rows: config, sla_headroom, J/query, p95, SLA
        verdict, energy."""
        return [(c, h, r.joules_per_query, r.p95_latency_seconds,
                 "met" if r.slas_met else "MISSED", r.energy_joules)
                for c, h, r in zip(self.configs, self.sla_headrooms,
                                   self.reports)]

    def pareto_rows(self) -> list[tuple]:
        """The energy-vs-p95 frontier: SLA-respecting points no other
        SLA-respecting point beats on both Joules/query and p95,
        ascending by Joules/query."""
        met = [(c, h, r) for c, h, r in zip(
            self.configs, self.sla_headrooms, self.reports)
            if r.slas_met]
        frontier = []
        for c, h, r in met:
            dominated = any(
                o.joules_per_query <= r.joules_per_query
                and o.p95_latency_seconds <= r.p95_latency_seconds
                and (o.joules_per_query < r.joules_per_query
                     or o.p95_latency_seconds < r.p95_latency_seconds)
                for _, _, o in met)
            if not dominated:
                frontier.append((c, h, r.joules_per_query,
                                 r.p95_latency_seconds))
        return sorted(frontier, key=lambda row: row[2])

    def headline(self) -> dict[str, Any]:
        """The acceptance numbers: the cheapest SLA-respecting
        mechanism config vs. the ``power_aware`` baseline."""
        base = self.baseline()
        best = None
        for c, h, r in zip(self.configs, self.sla_headrooms,
                           self.reports):
            if c == "power_aware" or not r.slas_met:
                continue
            if best is None or r.joules_per_query \
                    < best[2].joules_per_query:
                best = (c, h, r)
        if best is None:
            raise ServiceError(
                "no mechanism config met every tenant SLA; the sweep "
                "has no admissible challenger")
        config, headroom, report = best
        return {
            "baseline_joules_per_query": base.joules_per_query,
            "baseline_p95_seconds": base.p95_latency_seconds,
            "best_config": config,
            "best_sla_headroom": headroom,
            "best_joules_per_query": report.joules_per_query,
            "best_p95_seconds": report.p95_latency_seconds,
            "savings_fraction": 1.0 - report.joules_per_query
            / base.joules_per_query,
            "dominates_power_aware": report.joules_per_query
            < base.joules_per_query,
        }

    def to_dict(self) -> dict[str, Any]:
        return {"configs": list(self.configs),
                "sla_headrooms": list(self.sla_headrooms),
                "reports": [r.to_dict() for r in self.reports]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PVCQEDSweepResult":
        return cls(
            configs=list(data.get("configs", [])),
            sla_headrooms=list(data.get("sla_headrooms", [])),
            reports=[ServiceReport.from_dict(r)
                     for r in data.get("reports", [])])


def pvc_qed_aggregate(points: Sequence[Any]) -> PVCQEDSweepResult:
    """Fold finished mechanism points into the Pareto sweep result."""
    order = {name: i for i, name in enumerate(PVC_QED_CONFIGS)}
    ordered = sorted(
        points,
        key=lambda p: (order.get(str(p.knobs.get("config", "power_aware")),
                                 len(order)),
                       float(p.knobs.get("sla_headroom", 0.6))))
    return PVCQEDSweepResult(
        configs=[str(p.knobs.get("config", "power_aware"))
                 for p in ordered],
        sla_headrooms=[float(p.knobs.get("sla_headroom", 0.6))
                       for p in ordered],
        reports=[p.report for p in ordered])


def hetero_aggregate(points: Sequence[Any]) -> HeteroSweepResult:
    """Fold finished hetero points into the composition frontier."""
    order = {name: i for i, name in enumerate(COMPOSITIONS)}
    ordered = sorted(
        points,
        key=lambda p: (order.get(str(p.knobs.get("composition", "mixed")),
                                 len(order)),
                       float(p.knobs.get("load", 1.0)),
                       -float(p.knobs.get("sla_scale", 1.0))))
    return HeteroSweepResult(
        compositions=[str(p.knobs.get("composition", "mixed"))
                      for p in ordered],
        loads=[float(p.knobs.get("load", 1.0)) for p in ordered],
        sla_scales=[float(p.knobs.get("sla_scale", 1.0))
                    for p in ordered],
        reports=[p.report for p in ordered])
