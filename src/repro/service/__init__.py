"""repro.service: fleet-scale query serving with power-aware dispatch.

The cluster layer of the reproduction (paper §2.4/§4.2 at fleet
scale): multi-tenant open-loop arrival streams, heterogeneous fleets
declared as :class:`FleetSpec` compositions of :class:`NodeClass`
tiers, pluggable dispatch policies routing on a
:class:`DispatchContext` (marginal Joules, SLA slack), an autoscaler
with per-class spin-up break-even accounting, and SLA-vs-energy
reporting through the unified report protocol.

Quick start::

    from repro.service import FleetSpec, build_stream, simulate_service

    stream = build_stream(100_000)
    fleet = FleetSpec.of(beefy=4, wimpy=24)   # or .homogeneous(16)
    report = simulate_service(stream, fleet=fleet, policy="power_aware")
    print(report.joules_per_query, report.p95_latency_seconds)
    for cls in report.classes:                # per-class rollups
        print(cls.node_class, cls.joules_per_query)

Beyond routing, two execution policies reproduce the Lang & Patel
(arXiv 0909.1767) mechanisms: :class:`PVCPolicy` governs per-node
frequency (cubic power, linear slowdown, within SLA headroom) and
:class:`QEDPolicy` holds compatible arrivals to execute them as shared
batches; ``QEDPolicy(inner="pvc")`` stacks both.  POLICIES.md is the
policy-author's guide.

or, the registered sweeps::

    python -m repro.runner run svc_policies   # three policies, 1.05 M
    python -m repro.runner run svc_hetero     # composition x load x SLA
    python -m repro.runner run svc_pvc_qed    # PVC x QED Pareto frontier
"""

from repro.service.autoscale import Autoscaler, calibrated_drain_joules
from repro.service.dispatch import (DISPATCH_POLICIES, CostAware,
                                    DispatchContext, DispatchPolicy,
                                    LeastLoaded, PowerAwarePacking,
                                    RoundRobin, make_policy,
                                    policy_knob_names, register_policy)
from repro.service.fleet import simulate_service
from repro.service.micro import MicroFleetResult, run_micro_fleet
from repro.service.node import FleetNode, NodePowerModel
from repro.service.pvc import DEFAULT_FREQUENCY_STEPS, PVCPolicy
from repro.service.qed import QEDPolicy
from repro.service.report import (ClassStats, FaultStats, NodeStats,
                                  ServiceError, ServiceReport,
                                  ServiceSweepResult, TenantStats,
                                  rollup_classes)
from repro.service.spec import (NODE_CLASS_REGISTRY, FleetSpec, NodeClass,
                                node_class_model, register_node_class)
from repro.service.workload import (DEFAULT_CLASSES, DEFAULT_TENANTS,
                                    ArrivalStream, QueryClass, Tenant,
                                    build_stream)

__all__ = [
    "ArrivalStream",
    "Autoscaler",
    "ClassStats",
    "CostAware",
    "DEFAULT_CLASSES",
    "DEFAULT_FREQUENCY_STEPS",
    "DEFAULT_TENANTS",
    "DISPATCH_POLICIES",
    "DispatchContext",
    "DispatchPolicy",
    "FaultStats",
    "FleetNode",
    "FleetSpec",
    "LeastLoaded",
    "MicroFleetResult",
    "NODE_CLASS_REGISTRY",
    "NodeClass",
    "NodePowerModel",
    "NodeStats",
    "PVCPolicy",
    "PowerAwarePacking",
    "QEDPolicy",
    "QueryClass",
    "RoundRobin",
    "ServiceError",
    "ServiceReport",
    "ServiceSweepResult",
    "Tenant",
    "TenantStats",
    "build_stream",
    "calibrated_drain_joules",
    "make_policy",
    "node_class_model",
    "policy_knob_names",
    "register_node_class",
    "register_policy",
    "rollup_classes",
    "run_micro_fleet",
    "simulate_service",
]
