"""repro.service: fleet-scale query serving with power-aware dispatch.

The cluster layer of the reproduction (paper §2.4/§4.2 at fleet
scale): multi-tenant open-loop arrival streams, pluggable dispatch
policies, an autoscaler with spin-up break-even accounting, and
SLA-vs-energy reporting through the unified report protocol.

Quick start::

    from repro.service import build_stream, simulate_service

    stream = build_stream(100_000)
    report = simulate_service(stream, n_nodes=16, policy="power_aware")
    print(report.joules_per_query, report.p95_latency_seconds)

or, the registered sweep (three policies, 1.05 M queries)::

    python -m repro.runner run svc_policies
"""

from repro.service.autoscale import Autoscaler, calibrated_drain_joules
from repro.service.dispatch import (DISPATCH_POLICIES, DispatchPolicy,
                                    LeastLoaded, PowerAwarePacking,
                                    RoundRobin, make_policy,
                                    register_policy)
from repro.service.fleet import simulate_service
from repro.service.micro import MicroFleetResult, run_micro_fleet
from repro.service.node import FleetNode, NodePowerModel
from repro.service.report import (FaultStats, NodeStats, ServiceError,
                                  ServiceReport, ServiceSweepResult,
                                  TenantStats)
from repro.service.workload import (DEFAULT_CLASSES, DEFAULT_TENANTS,
                                    ArrivalStream, QueryClass, Tenant,
                                    build_stream)

__all__ = [
    "ArrivalStream",
    "Autoscaler",
    "DEFAULT_CLASSES",
    "DEFAULT_TENANTS",
    "DISPATCH_POLICIES",
    "DispatchPolicy",
    "FaultStats",
    "FleetNode",
    "LeastLoaded",
    "MicroFleetResult",
    "NodePowerModel",
    "NodeStats",
    "PowerAwarePacking",
    "QueryClass",
    "RoundRobin",
    "ServiceError",
    "ServiceReport",
    "ServiceSweepResult",
    "Tenant",
    "TenantStats",
    "build_stream",
    "calibrated_drain_joules",
    "make_policy",
    "register_policy",
    "run_micro_fleet",
    "simulate_service",
]
