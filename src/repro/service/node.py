"""Serving nodes: calibrated power models and fast analytic servers.

A :class:`FleetNode` is the serving-layer view of one
:class:`~repro.hardware.server.Server`: a single FCFS service pipe with
a utilization-linear power curve.  Under that (paper §3.1) linearity,
energy over any interval is *exactly*

    idle_watts * on_seconds + (peak - idle) * busy_seconds
    + boot/drain transition lumps

so the node integrates its own energy in closed form from three
accumulators instead of replaying a power step function — which is how
a 16-node fleet absorbs a million queries in seconds.  Fidelity to the
hardware layer comes from calibration, not re-simulation:
:meth:`NodePowerModel.from_server` reads idle/peak watts off a real
simulated server profile, and :meth:`NodePowerModel.from_cluster_model`
adopts the §2.4 ensemble constants, so the fast path and the metered
path price Joules identically.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Mapping, Optional

from repro.service.report import NodeStats, ServiceError


@dataclass(frozen=True)
class NodePowerModel:
    """Utilization-linear power curve plus power-cycling costs."""

    name: str = "node"
    idle_watts: float = 200.0
    peak_watts: float = 350.0
    #: seconds a powered-on node is unavailable while booting
    boot_seconds: float = 20.0
    #: energy drawn across the boot window; ``None`` prices it at peak
    #: draw for the window, tracking ``peak_watts``/``boot_seconds``
    #: overrides instead of assuming the default 350 W / 20 s box
    boot_joules: Optional[float] = None
    #: seconds and energy to flush/park state on power-off
    drain_seconds: float = 5.0
    drain_joules: float = 1_000.0
    #: relative service rate (2.0 completes queries twice as fast)
    speed_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.boot_joules is None:
            object.__setattr__(self, "boot_joules",
                               self.peak_watts * self.boot_seconds)
        if self.idle_watts < 0 or self.peak_watts < self.idle_watts:
            raise ServiceError(
                f"{self.name}: need 0 <= idle <= peak watts, got "
                f"{self.idle_watts}/{self.peak_watts}")
        if self.speed_factor <= 0:
            raise ServiceError(f"{self.name}: speed factor must be positive")
        if min(self.boot_seconds, self.boot_joules, self.drain_seconds,
               self.drain_joules) < 0:
            raise ServiceError(f"{self.name}: negative transition cost")

    def power(self, utilization: float) -> float:
        if not 0.0 <= utilization <= 1.0 + 1e-9:
            raise ServiceError(f"utilization {utilization} out of range")
        return self.idle_watts + \
            (self.peak_watts - self.idle_watts) * min(1.0, utilization)

    @property
    def cycle_joules(self) -> float:
        """Energy of one full off/on cycle (boot + drain)."""
        return self.boot_joules + self.drain_joules

    def breakeven_seconds(self) -> float:
        """Minimum off-time before a power cycle saves energy.

        Same arithmetic as
        :meth:`~repro.consolidation.migration.MigrationOutcome.breakeven_seconds`:
        the cycle's transition energy repaid at the idle draw it avoids.
        """
        if self.idle_watts <= 0:
            return float("inf")
        return self.cycle_joules / self.idle_watts

    @classmethod
    def from_server(cls, profile: str = "commodity",
                    boot_seconds: float = 20.0,
                    drain_seconds: float = 5.0,
                    speed_factor: float = 1.0,
                    **profile_kwargs) -> "NodePowerModel":
        """Calibrate against a :mod:`repro.hardware.profiles` factory.

        Builds the named profile in a throwaway simulation and reads its
        spec-arithmetic idle/peak watts, so fleet nodes price energy
        exactly like the metered server they stand for.  Boot energy
        defaults to peak draw across the boot window; drain energy to
        idle draw across the drain window.
        """
        from repro.hardware import profiles
        from repro.sim import Simulation
        from repro.telemetry.context import current_collector, install, \
            uninstall

        try:
            factory = getattr(profiles, profile)
        except AttributeError:
            raise ServiceError(
                f"unknown hardware profile {profile!r}") from None
        # the throwaway calibration server must not register with an
        # active telemetry capture — it never simulates anything
        collector = current_collector()
        if collector is not None:
            uninstall(collector)
        try:
            server, _array = factory(Simulation(), **profile_kwargs)
        finally:
            if collector is not None:
                install(collector)
        idle = server.idle_power_watts()
        peak = server.peak_power_watts()
        return cls(
            name=profile,
            idle_watts=idle,
            peak_watts=peak,
            boot_seconds=boot_seconds,
            boot_joules=peak * boot_seconds,
            drain_seconds=drain_seconds,
            drain_joules=idle * drain_seconds,
            speed_factor=speed_factor,
        )

    @classmethod
    def from_cluster_model(cls, model,
                           boot_seconds: float = 20.0,
                           drain_seconds: float = 5.0) -> "NodePowerModel":
        """Adopt a §2.4 ensemble :class:`~repro.consolidation.cluster.
        ServerPowerModel`, splitting its ``cycle_joules`` into boot and
        drain shares proportional to their windows."""
        windows = boot_seconds + drain_seconds
        boot_share = boot_seconds / windows if windows > 0 else 1.0
        return cls(
            name="ensemble",
            idle_watts=model.idle_watts,
            peak_watts=model.peak_watts,
            boot_seconds=boot_seconds,
            boot_joules=model.cycle_joules * boot_share,
            drain_seconds=drain_seconds,
            drain_joules=model.cycle_joules * (1.0 - boot_share),
        )

    def with_drain_joules(self, joules: float) -> "NodePowerModel":
        """A copy with the drain lump replaced (metered calibration)."""
        return replace(self, drain_joules=joules)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "idle_watts": self.idle_watts,
            "peak_watts": self.peak_watts,
            "boot_seconds": self.boot_seconds,
            "boot_joules": self.boot_joules,
            "drain_seconds": self.drain_seconds,
            "drain_joules": self.drain_joules,
            "speed_factor": self.speed_factor,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "NodePowerModel":
        return cls(**dict(data))


class FleetNode:
    """One FCFS serving pipe with closed-form energy accounting."""

    __slots__ = ("name", "model", "on", "busy_until", "on_since",
                 "_interval_busy", "_interval_boot", "on_seconds",
                 "busy_seconds", "energy_joules", "boots", "completed",
                 "crashes", "_interval_active_joules",
                 "_interval_linear_busy", "_finalized", "node_class")

    def __init__(self, name: str, model: NodePowerModel,
                 on: bool = True, at: float = 0.0,
                 node_class: str = "node") -> None:
        self.name = name
        self.model = model
        self.node_class = node_class
        self.on = on
        #: earliest instant the pipe can start the next query
        self.busy_until = at if on else 0.0
        self.on_since = at if on else 0.0
        self._interval_busy = 0.0  # busy seconds in the current ON span
        self._interval_boot = 0.0  # boot seconds in the current ON span
        # The ON span's active energy above idle splits into two lanes
        # that may coexist (a PVC run downclocks some queries and not
        # others): serve() seconds accumulate in _interval_linear_busy
        # and are priced by the fleet-wide (peak - idle) * busy
        # identity at close, bit-for-bit as always; serve_active()
        # prices each query's explicit power state into
        # _interval_active_joules as it runs.
        self._interval_active_joules = 0.0
        self._interval_linear_busy = 0.0
        self.on_seconds = 0.0
        self.busy_seconds = 0.0
        self.energy_joules = 0.0
        self.boots = 0
        self.crashes = 0
        self.completed = 0
        self._finalized = False

    def backlog(self, now: float) -> float:
        """Seconds of queued + in-flight work ahead of a new arrival."""
        return self.busy_until - now if self.busy_until > now else 0.0

    @property
    def boot_until(self) -> float:
        """End of the current ON span's atomic boot window (its start
        for a node that was constructed powered on)."""
        return self.on_since + self._interval_boot

    def serve(self, arrival_t: float, service_s: float) -> float:
        """Admit one query; returns its latency (wait + service)."""
        if not self.on:
            raise ServiceError(f"{self.name}: dispatched to a powered-off "
                               "node")
        scaled = service_s / self.model.speed_factor
        start = self.busy_until if self.busy_until > arrival_t else arrival_t
        self.busy_until = start + scaled
        self._interval_busy += scaled
        self._interval_linear_busy += scaled
        self.completed += 1
        return self.busy_until - arrival_t

    def serve_active(self, arrival_t: float, service_s: float,
                     busy_watts: float,
                     speed_mult: float = 1.0) -> tuple[float, float]:
        """Admit one query at an explicit power state; returns its
        ``(start, end)`` execution window.

        The fault engine's entry point: a throttled node runs slower
        (``speed_mult < 1``) at a lower busy draw (``busy_watts``
        below peak, cubic-DVFS priced), so active energy is
        accumulated per query instead of through the fleet-wide
        ``(peak - idle) * busy_seconds`` identity.  Completion is the
        caller's to confirm — a later crash may retract it.
        """
        if not self.on:
            raise ServiceError(f"{self.name}: dispatched to a powered-off "
                               "node")
        if speed_mult <= 0:
            raise ServiceError(f"{self.name}: speed multiplier must be "
                               "positive")
        if busy_watts < self.model.idle_watts:
            raise ServiceError(f"{self.name}: busy draw below idle")
        scaled = service_s / (self.model.speed_factor * speed_mult)
        start = self.busy_until if self.busy_until > arrival_t else arrival_t
        self.busy_until = start + scaled
        self._interval_busy += scaled
        self._interval_active_joules += \
            (busy_watts - self.model.idle_watts) * scaled
        self.completed += 1
        return start, self.busy_until

    def retract(self, busy_seconds: float, active_joules: float,
                count: int) -> None:
        """Take back work a crash destroyed before it completed.

        ``busy_seconds`` / ``active_joules`` are the *unexecuted*
        remainders of in-flight and queued queries; ``count`` is how
        many of them never completed at all.
        """
        if min(busy_seconds, active_joules, count) < 0:
            raise ServiceError(f"{self.name}: negative retraction")
        self._interval_busy -= busy_seconds
        self._interval_active_joules -= active_joules
        self.completed -= count

    def crash(self, now: float, repair_at: float) -> None:
        """Lose the node ungracefully: no drain, books closed at ``now``.

        Unlike :meth:`power_off`, a crash forfeits the drain window
        (and its energy lump — the node just stops drawing power) and
        parks ``busy_until`` at ``repair_at``, the instant the node
        becomes bootable again.  The model treats the boot window as
        atomic, so the caller must not crash a node that is still
        booting (defer to the boot's end instead).
        """
        if not self.on:
            raise ServiceError(f"{self.name}: cannot crash a powered-off "
                               "node")
        if now < self.on_since + self._interval_boot:
            raise ServiceError(
                f"{self.name}: crash at {now} lands inside the atomic "
                f"boot window ending {self.on_since + self._interval_boot}")
        if repair_at < now:
            raise ServiceError(f"{self.name}: repair precedes the crash")
        self._close_interval(now)
        self.on = False
        self.crashes += 1
        # unusable until repaired; power_on() checks busy_until
        self.busy_until = repair_at

    def power_on(self, now: float) -> None:
        """Boot the node; it serves once the boot window passes."""
        if self.on:
            raise ServiceError(f"{self.name}: already powered on")
        if now < self.busy_until:
            raise ServiceError(f"{self.name}: cannot boot mid-drain")
        self.on = True
        self.on_since = now
        self._interval_busy = 0.0
        self._interval_active_joules = 0.0
        self._interval_linear_busy = 0.0
        self._interval_boot = self.model.boot_seconds
        self.busy_until = now + self.model.boot_seconds
        self.boots += 1
        self.energy_joules += self.model.boot_joules

    def power_off(self, now: float) -> None:
        """Cut the node; the caller must have let the pipe drain."""
        if not self.on:
            raise ServiceError(f"{self.name}: already powered off")
        if self.busy_until > now:
            raise ServiceError(
                f"{self.name}: cannot power off with {self.busy_until - now:.3f}s "
                "of backlog")
        self._close_interval(now)
        self.on = False
        self.energy_joules += self.model.drain_joules
        # the pipe is unusable until the drain completes
        self.busy_until = now + self.model.drain_seconds

    def _close_interval(self, now: float) -> None:
        span = now - self.on_since
        self.on_seconds += span
        self.busy_seconds += self._interval_busy
        # the boot window is priced wholly by the boot_joules lump —
        # only the remainder of the interval draws idle-or-busy power;
        # serve_active() seconds carry their own per-query active
        # energy (explicit power states), serve() seconds use the
        # fleet-wide linear identity
        active = (self.model.peak_watts - self.model.idle_watts) \
            * self._interval_linear_busy + self._interval_active_joules
        self.energy_joules += (self.model.idle_watts
                               * (span - self._interval_boot)
                               + active)
        self._interval_busy = 0.0
        self._interval_active_joules = 0.0
        self._interval_linear_busy = 0.0
        self._interval_boot = 0.0

    def finalize(self, end: float) -> NodeStats:
        """Close the books at ``end`` (>= the node's last activity)."""
        if self._finalized:
            raise ServiceError(f"{self.name}: finalized twice")
        if self.on:
            if end < self.busy_until:
                raise ServiceError(
                    f"{self.name}: finalize at {end} precedes backlog "
                    f"drain at {self.busy_until}")
            self._close_interval(end)
            self.on = False
        self._finalized = True
        return NodeStats(
            node=self.name,
            completed=self.completed,
            on_seconds=self.on_seconds,
            busy_seconds=self.busy_seconds,
            energy_joules=self.energy_joules,
            boots=self.boots,
            crashes=self.crashes,
            node_class=self.node_class,
        )
