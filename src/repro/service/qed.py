"""QED: queued execution — delay queries to share their work.

Lang & Patel's second eco-friendly mechanism (arXiv 0909.1767,
PAPERS.md) is **QED**: instead of dispatching every arrival the
instant it lands, hold compatible queries briefly and execute them as
one shared batch.  The fleet burns active Joules per *execution*, not
per query, so a batch of ``B`` compatible queries whose shared
fraction is ``c`` costs

    s * (1 + (B - 1) * (1 - c))          (speed-1 seconds)

instead of ``B * s`` — and the autoscaler, which observes demand at
release, sees the smaller number and consolidates harder.  The price
is latency: held members wait out the hold window, spending p95 slack
to buy Joules/query.

:class:`QEDPolicy` keys its hold queues by ``(tenant, service
demand)`` — the stream draws each arrival's demand from its query
class's constant, so a queue holds exactly "same tenant, same query
class", the compatibility notion under which work sharing (shared
scans, plan reuse) is defensible.  A queue releases when the *first*
member's latency headroom runs out (``min(hold_seconds, sla *
sla_headroom)`` after its arrival), or immediately when ``max_batch``
fills.  With ``hold_seconds=0`` every arrival releases alone at its
own arrival instant, reproducing the un-batched engine event for
event (the property tests pin byte-identity).

Routing, admission, autoscaling, and the DVFS hook all delegate to
the wrapped ``inner`` policy, so ``QEDPolicy(inner="pvc")`` stacks
batching over the frequency governor — the full PVC+QED composition.

>>> qed = QEDPolicy(hold_seconds=1.0, shared_fraction=0.7, max_batch=4)
>>> qed.name
'qed(power_aware)'
>>> qed.offer(0, 10.0, 0.3, tenant=1, sla_seconds=4.0)    # held
[]
>>> qed.next_deadline()        # 10.0 + min(1.0, 4.0 * 0.5)
11.0
>>> qed.offer(1, 10.4, 0.3, tenant=1, sla_seconds=4.0)    # joins
[]
>>> [batch] = qed.due(11.0)
>>> batch.members, batch.release_at, round(batch.service_seconds, 3)
((0, 1), 11.0, 0.39)
>>> QEDPolicy(hold_seconds=0.0).offer(7, 5.0, 0.05, 0, 2.0)
[Batch(members=(7,), release_at=5.0, service_seconds=0.05, sla_seconds=2.0)]
"""

from __future__ import annotations

from typing import Optional

from repro.flightrec.context import current_recorder
from repro.service.dispatch import (Batch, DispatchContext, DispatchPolicy,
                                    make_policy, register_policy)
from repro.service.node import FleetNode
from repro.service.report import ServiceError


class _Hold:
    """One open hold queue: members in arrival order, a release
    deadline pinned by the first member, and the running combined
    (shared) service demand."""

    __slots__ = ("members", "deadline", "service_seconds", "sla_seconds")

    def __init__(self, k: int, deadline: float, service_seconds: float,
                 sla_seconds: Optional[float]) -> None:
        self.members = [k]
        self.deadline = deadline
        self.service_seconds = service_seconds
        self.sla_seconds = sla_seconds

    def to_batch(self, release_at: float) -> Batch:
        return Batch(tuple(self.members), release_at,
                     self.service_seconds, self.sla_seconds)


class QEDPolicy(DispatchPolicy):
    """Queued/batched execution over a wrapped routing policy.

    ``hold_seconds`` is the longest any query waits in its hold queue;
    ``sla_headroom`` caps the wait at that fraction of the tenant's
    p95 target, so a latency-sensitive tenant's queue releases sooner
    than the global window.  ``shared_fraction`` is how much of each
    *follower*'s demand the shared execution absorbs (``0``: batching
    only saves dispatch events; ``1``: followers ride free).
    ``max_batch`` releases a queue the instant it fills, bounding both
    the shared execution's size and the engine's held state.
    """

    name = "qed"
    batching = True

    def __init__(self, inner: DispatchPolicy | str = "power_aware",
                 hold_seconds: float = 0.5,
                 sla_headroom: float = 0.5,
                 shared_fraction: float = 0.7,
                 max_batch: int = 32,
                 admission_limit_seconds: Optional[float] = None,
                 **inner_kwargs) -> None:
        super().__init__(admission_limit_seconds)
        self.inner = make_policy(inner, **inner_kwargs)
        if self.inner.batching:
            raise ServiceError(
                f"qed cannot wrap {self.inner.name!r}: hold queues do "
                "not nest")
        if hold_seconds < 0:
            raise ServiceError("hold window cannot be negative")
        if not 0 < sla_headroom <= 1.0:
            raise ServiceError(
                f"SLA headroom must lie in (0, 1], got {sla_headroom}")
        if not 0 <= shared_fraction <= 1.0:
            raise ServiceError(
                f"shared fraction must lie in [0, 1], got {shared_fraction}")
        if max_batch < 1:
            raise ServiceError("max batch must be at least 1")
        self.hold_seconds = hold_seconds
        self.sla_headroom = sla_headroom
        self.shared_fraction = shared_fraction
        self.max_batch = int(max_batch)
        self.autoscaled = self.inner.autoscaled
        self.dvfs = self.inner.dvfs
        self.name = f"qed({self.inner.name})"
        self._queues: dict[tuple[int, float], _Hold] = {}

    # -- routing/admission/DVFS delegate to the wrapped policy --------

    def route(self, ctx: DispatchContext) -> int:
        return self.inner.route(ctx)

    def admits(self, node: FleetNode, now: float) -> bool:
        return super().admits(node, now) and self.inner.admits(node, now)

    def frequency(self, ctx: DispatchContext, i: int) -> float:
        return self.inner.frequency(ctx, i)

    # -- the hold/release protocol ------------------------------------

    def offer(self, k: int, now: float, service_seconds: float,
              tenant: int, sla_seconds: Optional[float]) -> list[Batch]:
        window = self.hold_seconds
        if sla_seconds is not None:
            cap = sla_seconds * self.sla_headroom
            if cap < window:
                window = cap
        if window <= 0.0 or self.max_batch == 1:
            # degenerate: release alone, at the arrival instant, with
            # the arrival's exact demand — byte-identical to un-batched
            return [Batch((k,), now, service_seconds, sla_seconds)]
        key = (tenant, service_seconds)
        held = self._queues.get(key)
        rec = current_recorder()
        if held is None:
            self._queues[key] = _Hold(k, now + window, service_seconds,
                                      sla_seconds)
            if rec is not None:
                rec.events.append((now, "hold_open", None, tenant, k,
                                   {"deadline": now + window,
                                    "window": window,
                                    "service_seconds": service_seconds}))
            return []
        held.members.append(k)
        held.service_seconds += \
            service_seconds * (1.0 - self.shared_fraction)
        if rec is not None:
            rec.events.append((now, "hold_join", None, tenant, k,
                               {"first": held.members[0],
                                "size": len(held.members)}))
        if len(held.members) >= self.max_batch:
            del self._queues[key]
            if rec is not None:
                rec.events.append(
                    (now, "batch_flush", None, tenant, None,
                     {"first": held.members[0],
                      "members": len(held.members), "reason": "full",
                      "combined": held.service_seconds}))
            return [held.to_batch(now)]
        return []

    def next_deadline(self) -> float:
        return min((held.deadline for held in self._queues.values()),
                   default=float("inf"))

    def due(self, now: float) -> list[Batch]:
        ready = sorted(
            (key for key, held in self._queues.items()
             if held.deadline <= now),
            key=lambda key: (self._queues[key].deadline,
                             self._queues[key].members[0]))
        return self._release(ready, "deadline")

    def flush(self) -> list[Batch]:
        ready = sorted(self._queues,
                       key=lambda key: (self._queues[key].deadline,
                                        self._queues[key].members[0]))
        return self._release(ready, "flush")

    def _release(self, ready, reason: str) -> list[Batch]:
        rec = current_recorder()
        out = []
        for key in ready:
            held = self._queues.pop(key)
            if rec is not None:
                rec.events.append(
                    (held.deadline, "batch_flush", None, key[0], None,
                     {"first": held.members[0],
                      "members": len(held.members), "reason": reason,
                      "combined": held.service_seconds}))
            out.append(held.to_batch(held.deadline))
        return out


register_policy(QEDPolicy)
