"""Micro fleet: dispatch policies over *real* executors.

The analytic fleet in :mod:`repro.service.fleet` prices time and energy
in closed form; this module is its ground-truth companion.  A micro
fleet is a handful of fully-simulated
:class:`~repro.hardware.server.Server` nodes, each holding a byte-
identical replica of the dataset behind its own
:class:`~repro.relational.executor.Executor`, sharing one discrete-
event :class:`~repro.sim.Simulation`.  Arrivals route through the
*same* :class:`~repro.service.dispatch.DispatchPolicy` objects the
analytic fleet uses (estimator :class:`~repro.service.node.FleetNode`
pipes track backlogs), then every query genuinely executes — rows come
back from whichever replica served it.

That is the contract the property tests pin down: dispatch is a
placement decision, never a semantic one, so every policy must return
byte-identical result sets for the same arrival stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.relational.executor import ExecutionContext, Executor
from repro.relational.operators import TableScan
from repro.relational.schema import Column, TableSchema
from repro.relational.types import DataType
from repro.service.dispatch import (DispatchContext, DispatchPolicy,
                                    make_policy)
from repro.service.node import FleetNode, NodePowerModel
from repro.service.report import ServiceError
from repro.service.workload import (ArrivalStream, QueryClass, Tenant,
                                    build_stream)
from repro.sim import Simulation
from repro.storage.manager import StorageManager

#: the micro workload's two query shapes: a cheap scan of the small
#: table and a heavier scan of the wide one
MICRO_CLASSES = (QueryClass("small", 0.05), QueryClass("wide", 0.30))

MICRO_TENANT = Tenant("micro", rate_per_s=1.0, sla_p95_seconds=60.0,
                      mix=(("small", 0.6), ("wide", 0.4)))


@dataclass
class MicroFleetResult:
    """Per-arrival outcomes of one micro-fleet run."""

    policy: str
    #: node index that served each arrival (-1: rejected)
    assigned_node: list[int]
    #: serialized result rows per arrival (None: rejected)
    result_bytes: list[Optional[bytes]]
    #: measured latency per arrival (nan: rejected)
    latencies: list[float]
    energy_joules: float
    makespan_seconds: float

    @property
    def completed(self) -> int:
        return sum(1 for b in self.result_bytes if b is not None)


def _serialize(rows: list[tuple]) -> bytes:
    return "\n".join(repr(r) for r in rows).encode()


class _MicroNode:
    """One replica: a simulated server, its tables, and an executor."""

    def __init__(self, sim: Simulation, index: int, rows: int,
                 scale: float) -> None:
        from repro.hardware.profiles import commodity
        self.server, array = commodity(sim)
        storage = StorageManager(sim)
        schema = [Column("k", DataType.INT64, nullable=False),
                  Column("v", DataType.INT64, nullable=False)]
        self.tables = {}
        for name, n in (("small", max(1, rows // 4)), ("wide", rows)):
            table = storage.create_table(
                TableSchema(f"{name}", schema), layout="row",
                placement=array)
            # identical content on every node: replicas, not shards
            table.load([(i, (i * 7919) % n) for i in range(n)])
            self.tables[name] = table
        self.executor = Executor(ExecutionContext(
            sim=sim, server=self.server, scale=scale))

    def build(self, query_class: str) -> TableScan:
        return TableScan(self.tables[query_class])


def run_micro_fleet(policy: DispatchPolicy | str = "round_robin",
                    n_nodes: int = 2,
                    queries: int = 8,
                    rows: int = 64,
                    scale: float = 50.0,
                    stream: Optional[ArrivalStream] = None,
                    seed: int = 0,
                    **policy_kwargs) -> MicroFleetResult:
    """Serve a small stream on fully-simulated replicas.

    Dispatch decisions use estimator pipes fed by the stream's nominal
    service times; execution is the real thing — every admitted query
    runs through an :class:`Executor` and returns its rows.
    """
    if n_nodes < 1:
        raise ServiceError("need at least one node")
    if stream is None:
        stream = build_stream(queries, tenants=(MICRO_TENANT,),
                              classes=MICRO_CLASSES, seed=seed)
    policy = make_policy(policy, **policy_kwargs)

    sim = Simulation()
    micro_nodes = [_MicroNode(sim, i, rows, scale)
                   for i in range(n_nodes)]
    model = NodePowerModel(name="estimator", idle_watts=1.0,
                           peak_watts=2.0, boot_seconds=0.0,
                           boot_joules=0.0, drain_seconds=0.0,
                           drain_joules=0.0)
    estimators = [FleetNode(f"est{i}", model, on=True)
                  for i in range(n_nodes)]
    on_ids = list(range(n_nodes))

    n = len(stream)
    assigned: list[list[tuple[int, float, str]]] = [[] for _ in
                                                    range(n_nodes)]
    assigned_node = [-1] * n
    for k in range(n):
        t = float(stream.times[k])
        s = float(stream.service_seconds[k])
        i = policy.route(DispatchContext(estimators, on_ids, t, s))
        if not policy.admits(estimators[i], t):
            continue
        estimators[i].serve(t, s)
        name = stream.classes[int(stream.class_index[k])].name
        assigned[i].append((k, t, name))
        assigned_node[k] = i

    result_bytes: list[Optional[bytes]] = [None] * n
    latencies = [float("nan")] * n

    def worker(i: int):
        node = micro_nodes[i]
        for k, at, name in assigned[i]:
            if sim.now < at:
                yield sim.timeout(at - sim.now)
            result = yield from node.executor.run_process(node.build(name))
            result_bytes[k] = _serialize(result.rows)
            latencies[k] = sim.now - at

    workers = [sim.spawn(worker(i), name=f"micro-node{i}")
               for i in range(n_nodes) if assigned[i]]
    if workers:
        sim.run(until=sim.all_of(workers))
    end = sim.now
    energy = sum(node.server.meter.energy_joules(0.0, end)
                 for node in micro_nodes)
    return MicroFleetResult(
        policy=policy.name,
        assigned_node=assigned_node,
        result_bytes=result_bytes,
        latencies=latencies,
        energy_joules=energy,
        makespan_seconds=end,
    )
