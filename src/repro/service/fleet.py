"""The fleet simulator: millions of queries against a node cluster.

:func:`simulate_service` plays an :class:`~repro.service.workload.
ArrivalStream` against a fleet declared by a
:class:`~repro.service.spec.FleetSpec` — homogeneous or a composition
of node classes — under a :class:`~repro.service.dispatch.
DispatchPolicy`, with the :class:`~repro.service.autoscale.Autoscaler`
stepping at epoch boundaries for policies that want it.  Everything is
closed-form: nodes are FCFS single pipes (``busy_until`` floats), so
one pass over the time-ordered arrivals yields exact waits, and energy
follows from the utilization-linear power identity in
:mod:`repro.service.node`.  That is what fits 10^6 queries in seconds
— the discrete-event engine stays out of the per-query path.

Two serving cores implement that pass.  The **reference loop** below
walks one arrival at a time through ``policy.route`` and is the
semantic ground truth every hook (telemetry, flight recording,
batching, faults) runs on.  The **event core**
(:mod:`repro.service.engine`) replays the identical arithmetic over
the stream's columnar arrays with O(log n) routing structures, ~10-30x
faster, and is picked automatically (``engine="auto"``) whenever the
configuration allows; the two are byte-identical by contract (see the
engine-equivalence suite).

Telemetry is mirrored, not sacrificed: when a
:func:`repro.telemetry.capture` collector is installed, the fleet
builds one real :class:`~repro.sim.Simulation` +
:class:`~repro.hardware.meter.EnergyMeter` + one
:class:`~repro.hardware.device.Device` per node, replays every power
transition into the device step functions, and opens a root
:class:`~repro.telemetry.spans.EnergySpan` per powered-on interval per
node — so ``python -m repro.runner trace svc_policies`` shows the same
per-node timelines and Joules any metered experiment would.

The legacy ``n_nodes=``/``model=`` parameters still work as deprecated
shims that build a homogeneous :class:`FleetSpec` (they warn on use,
like the :mod:`repro` facade's PEP 562 shims warn on access).
"""

from __future__ import annotations

import warnings
from typing import Optional, Sequence

import numpy as np

from repro.service.autoscale import Autoscaler
from repro.service.dispatch import (DispatchContext, DispatchPolicy,
                                    dispatch_candidates, make_policy)
from repro.service.node import FleetNode, NodePowerModel
from repro.service.report import (ServiceError, ServiceReport, TenantStats,
                                  quantile, rollup_classes)
from repro.service.spec import FleetSpec
from repro.service.workload import ArrivalStream


def _resolve_fleet(fleet: Optional[FleetSpec],
                   n_nodes: Optional[int],
                   model: Optional[NodePowerModel],
                   default_nodes: int = 16) -> FleetSpec:
    """The v2 surface contract: ``fleet=`` is primary, the legacy
    ``n_nodes=``/``model=`` pair is a deprecated shim building a
    homogeneous spec, and mixing the two is an error."""
    if fleet is not None:
        if n_nodes is not None or model is not None:
            raise ServiceError(
                "pass either fleet= or the deprecated n_nodes=/model= "
                "shims, not both")
        if not isinstance(fleet, FleetSpec):
            raise ServiceError(
                f"fleet must be a FleetSpec, got {type(fleet).__name__}")
        return fleet
    if n_nodes is None and model is None:
        return FleetSpec.homogeneous(default_nodes)
    warnings.warn(
        "the n_nodes=/model= parameters are deprecated and will be "
        "removed in 2.0; pass fleet=FleetSpec.homogeneous(n, model) "
        "(or FleetSpec.of(...)) instead",
        DeprecationWarning, stacklevel=3)
    return FleetSpec.homogeneous(
        n_nodes if n_nodes is not None else default_nodes, model)


def _build_nodes(fleet: FleetSpec) -> list[FleetNode]:
    return [FleetNode(name, model, on=True, node_class=class_name)
            for name, class_name, model in fleet.members()]


class _TelemetryMirror:
    """Replays fleet power transitions into real metered devices.

    Per-node transitions are time-ordered (a FCFS pipe starts queries
    in dispatch order), so each device's power step function is
    recorded directly; the shared clock only advances once, at
    :meth:`finish`, to the fleet's end time.  Every node carries its
    own :class:`NodePowerModel`, so a heterogeneous fleet's devices
    draw their class's watts.
    """

    def __init__(self, collector, fleet_nodes: Sequence[FleetNode],
                 start_on: bool) -> None:
        from repro.hardware.device import Device
        from repro.hardware.meter import EnergyMeter
        from repro.sim import Simulation

        self.collector = collector
        self.sim = Simulation()
        self.meter = EnergyMeter(self.sim)  # self-registers while captured
        self.devices = []
        self.models = [node.model for node in fleet_nodes]
        self._spans: list = [None] * len(fleet_nodes)
        for i, node in enumerate(fleet_nodes):
            device = Device(self.sim, f"svc.{node.name}",
                            initial_power_watts=(node.model.idle_watts
                                                 if start_on else 0.0))
            self.meter.attach(device)
            self.devices.append(device)
            if start_on:
                self._spans[i] = collector.stack.open(
                    f"svc.{node.name}.on", 0.0, {}, root=True)

    def serve(self, i: int, start: float, end: float,
              busy_watts: Optional[float] = None) -> None:
        """Record one execution window; ``busy_watts`` overrides the
        peak draw for downclocked (PVC) or throttled executions."""
        model = self.models[i]
        series = self.devices[i].power_series
        series.record(start, model.peak_watts
                      if busy_watts is None else busy_watts)
        series.record(end, model.idle_watts)

    def power_on(self, i: int, now: float) -> None:
        model = self.models[i]
        series = self.devices[i].power_series
        boot_watts = (model.boot_joules / model.boot_seconds
                      if model.boot_seconds > 0 else 0.0)
        series.record(now, boot_watts)
        series.record(now + model.boot_seconds, model.idle_watts)
        self._spans[i] = self.collector.stack.open(
            f"{self.devices[i].name}.on", now, {}, root=True)
        self.collector.count("svc.boots")

    def power_off(self, i: int, now: float) -> None:
        model = self.models[i]
        series = self.devices[i].power_series
        drain_watts = (model.drain_joules / model.drain_seconds
                       if model.drain_seconds > 0 else 0.0)
        series.record(now, drain_watts)
        series.record(now + model.drain_seconds, 0.0)
        span = self._spans[i]
        if span is not None:
            self.collector.stack.close(span, now, {})
            self._spans[i] = None

    def finish(self, end: float, report: ServiceReport) -> None:
        self.sim.clock.advance_to(max(end, self.sim.now))
        for i, span in enumerate(self._spans):
            if span is not None:
                self.collector.stack.close(span, end, {})
                self._spans[i] = None
        self.collector.count("svc.queries_completed",
                             report.queries_completed)
        self.collector.count("svc.queries_rejected",
                             report.queries_rejected)


def simulate_service(stream: ArrivalStream,
                     fleet: Optional[FleetSpec] = None,
                     policy: DispatchPolicy | str = "power_aware",
                     autoscaler: Optional[Autoscaler] = None,
                     faults=None,
                     retry=None,
                     shed=None,
                     engine: str = "auto",
                     n_nodes: Optional[int] = None,
                     model: Optional[NodePowerModel] = None,
                     **policy_kwargs) -> ServiceReport:
    """Serve ``stream`` on the ``fleet``; returns the report.

    ``fleet`` is a :class:`~repro.service.spec.FleetSpec` (default: 16
    calibrated ``commodity`` nodes); the legacy ``n_nodes=``/``model=``
    pair still works as a deprecated shim for a homogeneous fleet
    (removal announced for 2.0).  ``policy`` may be a registered name
    or a ready :class:`DispatchPolicy`.  An ``autoscaler`` is only
    engaged when the policy declares ``autoscaled`` (packing); the
    all-on baselines keep the whole fleet powered, which is exactly the
    §2.4 non-proportionality problem the packing policy exists to fix.

    ``engine`` selects the serving core: ``"auto"`` (default) runs the
    vectorized event core of :mod:`repro.service.engine` whenever the
    configuration permits and falls back to the reference loop
    otherwise; ``"event"`` insists on the fast core (raising
    :class:`ServiceError` with the fallback reason if the configuration
    needs the loop); ``"loop"`` always runs the reference loop.  Both
    engines produce byte-identical reports — the one picked is recorded
    in :attr:`ServiceReport.engine` (runtime metadata, excluded from
    serialization).

    Passing a :class:`~repro.faults.schedule.FaultSchedule` as
    ``faults`` hands the run to the chaos engine
    (:func:`repro.faults.engine.simulate_faulty_service`): same
    closed-form pipes, but the schedule's crashes, throttles, disk
    failures, and timeout windows are merged into the timeline, with
    ``retry`` (:class:`~repro.faults.policies.RetryPolicy`) and
    ``shed`` (:class:`~repro.faults.policies.ShedPolicy`) steering the
    degradation.  The returned report then carries a
    :class:`~repro.service.report.FaultStats` ledger.
    """
    if engine not in ("auto", "event", "loop"):
        raise ServiceError(
            f"unknown engine {engine!r}: pass 'auto', 'event', or 'loop'")
    if faults is not None:
        from repro.faults.engine import simulate_faulty_service
        # resolve the fleet here so a deprecated n_nodes=/model= call
        # warns at *this* frame's caller, not at the delegation below
        return simulate_faulty_service(
            stream, faults, fleet=_resolve_fleet(fleet, n_nodes, model),
            policy=policy, autoscaler=autoscaler, retry=retry, shed=shed,
            engine=engine, **policy_kwargs)
    if retry is not None or shed is not None:
        raise ServiceError("retry/shed policies only apply to a fault "
                           "run: pass a FaultSchedule as faults=")
    fleet = _resolve_fleet(fleet, n_nodes, model)
    if len(stream) == 0:
        raise ServiceError("empty arrival stream")
    policy = make_policy(policy, **policy_kwargs)
    if policy.autoscaled and autoscaler is None:
        autoscaler = Autoscaler(fleet.classes[0].model)
    if not policy.autoscaled:
        autoscaler = None

    nodes = _build_nodes(fleet)
    n_total = len(nodes)
    on_ids = list(range(n_total))

    from repro.telemetry import current_collector
    collector = current_collector()

    from repro.flightrec.context import current_recorder
    rec = current_recorder()

    from repro.service.engine import event_core_unsupported, serve_event
    reason = event_core_unsupported(policy, collector, rec,
                                    stream=stream)
    if engine == "event" and reason is not None:
        raise ServiceError(
            f"engine='event' cannot serve this configuration: {reason} "
            "(use engine='auto' to fall back to the reference loop)")
    use_event = reason is None and engine != "loop"

    cols = stream.columns()
    n = len(cols)
    tenant_idx = cols.tenant_index

    if use_event:
        latencies, admitted, last_completion = serve_event(
            stream, fleet, policy, autoscaler, nodes, on_ids)
        report = _assemble_report(stream, fleet, policy, nodes,
                                  latencies, admitted, last_completion,
                                  float(cols.times[-1]))
        report.engine = "event"
        report.latencies = latencies
        return report

    mirror = (None if collector is None else
              _TelemetryMirror(collector, nodes, start_on=True))
    if rec is not None:
        rec.begin_run("fleet", stream, nodes, policy.name,
                      autoscaler is not None)

    times, services, slas = cols.lists()
    latencies = np.empty(n)
    admitted = np.ones(n, dtype=bool)

    epoch = autoscaler.epoch_seconds if autoscaler is not None else 0.0
    next_epoch = epoch if autoscaler is not None else float("inf")

    # batch tenants (pipelines) are exempt from the admission limit:
    # backlog rejection guards latency, and batch work has none to
    # guard — it only has a freshness deadline
    batch_list = (None if cols.batch_flags is None
                  else cols.batch_flags.tolist())

    if policy.batching:
        last_completion = _serve_batched(
            policy, nodes, on_ids, autoscaler, mirror, rec, times,
            services, tenant_idx, slas, latencies, admitted, batch_list)
    else:
        last_completion = 0.0
        dvfs = policy.dvfs
        detail = rec is not None and rec.detail
        lane = None if rec is None else rec.serve_lane
        emit_dvfs = None if rec is None else rec.dvfs_serves.append
        for k in range(n):
            t = times[k]
            while t >= next_epoch:
                autoscaler.step(next_epoch, nodes, on_ids)
                next_epoch += epoch
                if mirror is not None:
                    _mirror_power_state(mirror, nodes)
            s = services[k]
            if autoscaler is not None:
                autoscaler.observe(s)
            ctx = DispatchContext(nodes, on_ids, t, s, slas[k])
            i = policy.route(ctx)
            if detail:
                rec.events.append((t, "dispatch", i, int(tenant_idx[k]),
                                   k, dispatch_candidates(ctx, i)))
            node = nodes[i]
            if not policy.admits(node, t) and \
                    (batch_list is None or not batch_list[k]):
                admitted[k] = False
                latencies[k] = np.nan
                if rec is not None:
                    rec.events.append(
                        (t, "reject", i, int(tenant_idx[k]), k, {}))
                continue
            if dvfs and (freq := policy.frequency(ctx, i)) < 1.0:
                model_i = node.model
                busy_watts = model_i.idle_watts \
                    + (model_i.peak_watts - model_i.idle_watts) * freq ** 3
                start, done = node.serve_active(t, s, busy_watts, freq)
                latencies[k] = done - t
                if emit_dvfs is not None:
                    emit_dvfs((k, i, start, freq, busy_watts))
            else:
                busy_watts = None
                if mirror is not None:
                    start = node.busy_until if node.busy_until > t else t
                latencies[k] = node.serve(t, s)
                if lane is not None:
                    lane[k] = i
            if node.busy_until > last_completion:
                last_completion = node.busy_until
            if mirror is not None:
                mirror.serve(i, start, node.busy_until, busy_watts)

    report = _assemble_report(stream, fleet, policy, nodes, latencies,
                              admitted, last_completion, times[-1])
    report.engine = "loop"
    report.latencies = latencies
    if rec is not None:
        rec.end_run(report.makespan_seconds, report, latencies=latencies)
    if mirror is not None:
        mirror.finish(report.makespan_seconds, report)
    return report


def _assemble_report(stream: ArrivalStream,
                     fleet: FleetSpec,
                     policy: DispatchPolicy,
                     nodes: Sequence[FleetNode],
                     latencies: np.ndarray,
                     admitted: np.ndarray,
                     last_completion: float,
                     last_arrival: float) -> ServiceReport:
    """Finalize the fleet and fold the run into a
    :class:`ServiceReport` — the single assembly tail both serving
    engines share, so quantile math and energy rollups cannot drift
    between them."""
    tenant_idx = stream.tenant_index
    end = max(last_completion, last_arrival)
    node_stats = [node.finalize(end) for node in nodes]

    lat = latencies[admitted]
    if lat.size == 0:
        raise ServiceError("policy admitted no queries")
    p50, p95, p99 = np.quantile(lat, [0.50, 0.95, 0.99])
    tenants = []
    for ti, tenant in enumerate(stream.tenants):
        mask = tenant_idx == ti
        t_lat = np.sort(latencies[mask & admitted])
        t_rejected = int((mask & ~admitted).sum())
        if t_lat.size == 0:
            raise ServiceError(
                f"tenant {tenant.name!r} completed no queries")
        samples = t_lat.tolist()
        tenants.append(TenantStats(
            tenant=tenant.name,
            completed=int(t_lat.size),
            rejected=t_rejected,
            mean_latency_seconds=float(t_lat.mean()),
            p50_latency_seconds=quantile(samples, 0.50),
            p95_latency_seconds=quantile(samples, 0.95),
            p99_latency_seconds=quantile(samples, 0.99),
            sla_p95_seconds=tenant.sla_p95_seconds,
        ))

    return ServiceReport(
        policy=policy.name,
        n_nodes=len(nodes),
        queries_offered=len(latencies),
        queries_completed=int(admitted.sum()),
        queries_rejected=int((~admitted).sum()),
        makespan_seconds=end,
        energy_joules=sum(s.energy_joules for s in node_stats),
        p50_latency_seconds=float(p50),
        p95_latency_seconds=float(p95),
        p99_latency_seconds=float(p99),
        mean_latency_seconds=float(lat.mean()),
        node_seconds_on=sum(s.on_seconds for s in node_stats),
        tenants=tenants,
        nodes=node_stats,
        classes=rollup_classes(node_stats),
        fleet=fleet.to_dict(),
    )


def _serve_batched(policy: DispatchPolicy,
                   nodes: Sequence[FleetNode],
                   on_ids: list[int],
                   autoscaler: Optional[Autoscaler],
                   mirror: Optional[_TelemetryMirror],
                   rec,
                   times: list[float],
                   services: list[float],
                   tenant_idx,
                   slas: list[float],
                   latencies,
                   admitted,
                   batch_list: Optional[list[bool]] = None) -> float:
    """Drive a ``batching`` policy's hold/release protocol (QED).

    Arrivals enter the policy's hold queues through
    :meth:`~repro.service.dispatch.DispatchPolicy.offer`; the merged
    timeline interleaves arrivals with queue release deadlines
    (:meth:`next_deadline`/:meth:`due`), so a batch executes the
    instant its latency headroom runs out, never later.  Released
    batches route through the policy's ordinary :meth:`route`/
    :meth:`admits` hooks as *one* shared execution — every member
    completes at the batch end, and a rejected batch rejects every
    member.  The autoscaler observes the batch's *combined* (shared)
    demand at release, so consolidation sees the work QED actually
    creates, not the work it absorbed.  With a zero hold window every
    arrival releases immediately as a batch of one, reproducing the
    un-batched engine event for event.

    Returns the last completion instant (mutates ``latencies``,
    ``admitted``, the nodes, and ``on_ids`` in place).
    """
    n = len(times)
    inf = float("inf")
    epoch = autoscaler.epoch_seconds if autoscaler is not None else 0.0
    next_epoch = epoch if autoscaler is not None else inf
    # epochs stop with the workload, exactly as the chaos engine's do:
    # post-stream releases must not keep the autoscaler cycling a
    # fleet with nothing left to absorb
    last_arrival = times[-1]
    last_completion = 0.0
    dvfs = policy.dvfs
    detail = rec is not None and rec.detail

    def step_epochs(t: float) -> None:
        nonlocal next_epoch
        while t >= next_epoch and next_epoch <= last_arrival:
            autoscaler.step(next_epoch, nodes, on_ids)
            next_epoch += epoch
            if mirror is not None:
                _mirror_power_state(mirror, nodes)

    def execute(batch) -> None:
        nonlocal last_completion
        t = batch.release_at
        s = batch.service_seconds
        if autoscaler is not None:
            autoscaler.observe(s)
        ctx = DispatchContext(nodes, on_ids, t, s, batch.sla_seconds)
        i = policy.route(ctx)
        if detail:
            rec.events.append((t, "dispatch", i, None, batch.members[0],
                               dispatch_candidates(ctx, i)))
        node = nodes[i]
        if not policy.admits(node, t) and \
                (batch_list is None or not batch_list[batch.members[0]]):
            for k in batch.members:
                admitted[k] = False
                latencies[k] = np.nan
            if rec is not None:
                rec.events.append((t, "reject", i, None, None,
                                   {"members": list(batch.members)}))
            return
        if dvfs and (freq := policy.frequency(ctx, i)) < 1.0:
            model_i = node.model
            busy_watts = model_i.idle_watts \
                + (model_i.peak_watts - model_i.idle_watts) * freq ** 3
            start, done = node.serve_active(t, s, busy_watts, freq)
        else:
            freq = 1.0
            busy_watts = None
            start = node.busy_until if node.busy_until > t else t
            node.serve(t, s)
            done = node.busy_until
        # serve()/serve_active() count one completion; the other
        # members of the shared execution complete with it
        node.completed += len(batch.members) - 1
        for k in batch.members:
            latencies[k] = done - times[k]
        if done > last_completion:
            last_completion = done
        if mirror is not None:
            mirror.serve(i, start, done, busy_watts)
        if rec is not None:
            rec.batch_serves.append(
                (batch.members, i, t, start, done, s, freq, busy_watts))

    k = 0
    while True:
        t_arr = times[k] if k < n else inf
        deadline = policy.next_deadline()
        if deadline <= t_arr and deadline < inf:
            step_epochs(deadline)
            for batch in policy.due(deadline):
                execute(batch)
        elif k < n:
            step_epochs(t_arr)
            for batch in policy.offer(k, t_arr, services[k],
                                      int(tenant_idx[k]), slas[k]):
                execute(batch)
            k += 1
        else:
            break
    for batch in policy.flush():
        execute(batch)
    return last_completion


def _mirror_power_state(mirror: _TelemetryMirror,
                        nodes: Sequence[FleetNode]) -> None:
    """Propagate autoscaler on/off flips into the mirror devices."""
    for i, node in enumerate(nodes):
        span_open = mirror._spans[i] is not None
        if node.on and not span_open:
            # power_on happened this epoch step, at node.on_since
            mirror.power_on(i, node.on_since)
        elif not node.on and span_open:
            # power_off left busy_until at off-time + drain window
            mirror.power_off(
                i, node.busy_until - node.model.drain_seconds)
