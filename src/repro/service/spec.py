"""Fleet composition: node classes and the ``FleetSpec`` serving API.

The paper's §2.4 argues that energy-proportional *clusters* are built
by composition — choosing which, and what kind of, machines to power —
out of servers that are individually non-proportional.  Lang,
Harizopoulos, Patel, Shah & Tsirogiannis (arXiv 1208.1933) measure the
consequence: a cluster of many "wimpy" low-power nodes beats a few
"beefy" ones on Joules per query only in some load/SLA regimes, and
loses in others.  Expressing that question requires a fleet that is a
*composition*, not a count — which is what this module provides.

A :class:`NodeClass` is ``count`` identical nodes sharing one
:class:`~repro.service.node.NodePowerModel`; a :class:`FleetSpec` is an
ordered tuple of classes.  Specs serialize (``to_dict``/``from_dict``
invert exactly) and hash stably (:meth:`FleetSpec.fleet_hash`, the same
canonical-JSON SHA-256 discipline as
:meth:`~repro.runner.ExperimentSpec.spec_hash` and
:meth:`~repro.faults.schedule.FaultSchedule.schedule_hash`), so fleet
compositions ride the runner cache and observatory provenance like any
other knob.

Named classes resolve through a registry seeded with the two
calibrated archetypes of the crossover literature:

* ``beefy`` (and the homogeneous default ``node``) — the ``commodity``
  hardware profile: a 4-core Xeon-class box, high idle floor, best
  energy per unit of work when busy.
* ``wimpy`` — the paper's own low-power ``flash_scan_node`` profile at
  a fractional ``speed_factor``: a much lower idle floor, but *worse*
  Joules per unit of work at full tilt — exactly the 1208.1933 shape.

Quick start::

    from repro.service import FleetSpec, simulate_service

    fleet = FleetSpec.of(beefy=4, wimpy=24)
    report = simulate_service(stream, fleet=fleet)
    for cls in report.classes:
        print(cls.node_class, cls.energy_joules)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator, Mapping, Optional

from repro.service.node import NodePowerModel
from repro.service.report import ServiceError

#: wimpy-class service rate relative to a beefy node (arXiv 1208.1933
#: models wimpy nodes as slower per query as well as lower-powered)
WIMPY_SPEED_FACTOR = 0.45


@dataclass(frozen=True)
class NodeClass:
    """``count`` identical serving nodes sharing one power model."""

    name: str
    count: int
    model: NodePowerModel

    def __post_init__(self) -> None:
        if not self.name:
            raise ServiceError("node class needs a name")
        if self.count < 0:
            raise ServiceError(
                f"node class {self.name!r}: count cannot be negative")

    @property
    def capacity(self) -> float:
        """Speed-1 node-equivalents this class contributes."""
        return self.count * self.model.speed_factor

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "count": self.count,
            "model": self.model.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "NodeClass":
        return cls(
            name=data["name"],
            count=data["count"],
            model=NodePowerModel.from_dict(data["model"]),
        )


@dataclass(frozen=True)
class FleetSpec:
    """An ordered composition of node classes — the fleet, declared.

    Node indices run class by class in declaration order (``beefy``
    before ``wimpy`` in ``FleetSpec.of(beefy=4, wimpy=24)``), which is
    load-bearing: the packing dispatcher fills from the head of the
    index order and the autoscaler drains from its cold tail, so the
    declaration order is also the default preference order.  Duplicate
    class names are allowed (their report rollups merge), which is what
    makes a homogeneous fleet split into two chunks of the same class
    byte-identical to the unsplit one.
    """

    classes: tuple[NodeClass, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.classes, tuple):
            object.__setattr__(self, "classes", tuple(self.classes))
        if self.n_nodes < 1:
            raise ServiceError("fleet needs at least one node")

    @property
    def n_nodes(self) -> int:
        return sum(c.count for c in self.classes)

    @property
    def total_capacity(self) -> float:
        """Fleet capacity in speed-1 node-equivalents."""
        return sum(c.capacity for c in self.classes)

    def members(self) -> Iterator[tuple[str, str, NodePowerModel]]:
        """Yield ``(node_name, class_name, model)`` per node, in index
        order; names are ``{class}{global_index:03d}`` so the default
        homogeneous fleet keeps its historical ``node000 ...`` names."""
        idx = 0
        for cls in self.classes:
            for _ in range(cls.count):
                yield f"{cls.name}{idx:03d}", cls.name, cls.model
                idx += 1

    @classmethod
    def homogeneous(cls, n_nodes: int,
                    model: Optional[NodePowerModel] = None,
                    name: str = "node") -> "FleetSpec":
        """The classic single-class fleet (``model`` defaults to the
        calibrated ``commodity`` profile, as ``simulate_service``
        always has)."""
        if model is None:
            model = node_class_model("node")
        return cls(classes=(NodeClass(name=name, count=n_nodes,
                                      model=model),))

    @classmethod
    def of(cls, **counts: int) -> "FleetSpec":
        """Compose a fleet from registered class names, e.g.
        ``FleetSpec.of(beefy=4, wimpy=24)``.  Keyword order is the
        class (and therefore packing-preference) order; zero counts are
        dropped."""
        if not counts:
            raise ServiceError("FleetSpec.of() needs at least one class")
        classes = tuple(
            NodeClass(name=name, count=count,
                      model=node_class_model(name))
            for name, count in counts.items() if count != 0)
        return cls(classes=classes)

    def to_dict(self) -> dict[str, Any]:
        return {"classes": [c.to_dict() for c in self.classes],
                "hash": self.fleet_hash()}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FleetSpec":
        spec = cls(classes=tuple(NodeClass.from_dict(c)
                                 for c in data["classes"]))
        expected = data.get("hash")
        if expected is not None and expected != spec.fleet_hash():
            raise ServiceError(
                "fleet spec hash mismatch: the serialized composition "
                "was edited or corrupted")
        return spec

    def fleet_hash(self) -> str:
        """Stable SHA-256 over the canonical JSON composition — the
        same discipline as :meth:`~repro.runner.ExperimentSpec.
        spec_hash`, so specs key caches and provenance records."""
        from repro.runner.spec import stable_hash
        return stable_hash({"classes": [c.to_dict()
                                        for c in self.classes]})


#: registered class name -> model factory (resolved lazily: calibration
#: builds a throwaway simulation, which imports must not trigger)
NODE_CLASS_REGISTRY: dict[str, Callable[[], NodePowerModel]] = {}
_MODEL_CACHE: dict[str, NodePowerModel] = {}


def register_node_class(name: str,
                        factory: Callable[[], NodePowerModel]) -> None:
    """Register (or replace) a named node-class calibration."""
    NODE_CLASS_REGISTRY[name] = factory
    _MODEL_CACHE.pop(name, None)


def node_class_model(name: str) -> NodePowerModel:
    """Resolve a registered class name to its calibrated model."""
    try:
        factory = NODE_CLASS_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(NODE_CLASS_REGISTRY))
        raise ServiceError(
            f"unknown node class {name!r}; registered: {known}") from None
    if name not in _MODEL_CACHE:
        _MODEL_CACHE[name] = factory()
    return _MODEL_CACHE[name]


def _beefy() -> NodePowerModel:
    return NodePowerModel.from_server("commodity")


def _wimpy() -> NodePowerModel:
    return NodePowerModel.from_server("flash_scan_node",
                                      speed_factor=WIMPY_SPEED_FACTOR)


register_node_class("node", _beefy)
register_node_class("beefy", _beefy)
register_node_class("wimpy", _wimpy)
