"""The vectorized array-of-events serving core.

:func:`repro.service.fleet.simulate_service` owns two engines.  The
**reference loop** walks arrivals one ``DispatchContext`` at a time —
every query allocates a context, scans the fleet inside
``policy.route``, and pays a method call per bookkeeping update.  That
is ~2-30 µs per query depending on the policy, which caps frontier
sweeps near 10^6 queries.  This module is the **event core**: the same
simulation expressed over the columnar arrays of
:meth:`~repro.service.workload.ArrivalStream.columns`, with routing
served by O(log n) incremental structures instead of per-arrival fleet
scans:

* ``round_robin`` — the rotation is a closed form (arrival ``k`` lands
  on slot ``(next + k) % n``), so each node's arrival lane is a strided
  slice and the whole fleet runs as independent per-pipe recurrences.
* ``least_loaded`` — one binary heap of ``(busy_until, index)``; the
  root *is* the first-strict-minimum scan result, and ``heapreplace``
  after each serve keeps it exact.
* ``power_aware`` — packable candidates live in per-cost-rate
  min-index heaps fed by a ``waiting`` heap keyed on ``busy_until``;
  because arrivals (and so the pack bound) are monotone, a node
  migrates between the two at most once per serve, with stale entries
  dropped lazily by exact ``busy_until`` comparison.
* ``cost_aware`` — one segment tree per class block over node
  ``busy_until``; the cheapest-fitting node is a leftmost descent with
  the same monotone float predicate the reference scan evaluates.
* ``pvc(...)`` — the governor ladder runs inline on precomputed
  per-(class, step) constants: ``speed_factor * f`` and the cubic busy
  draw are computed once, with the identical expressions the reference
  engine evaluates per arrival.

**The contract is byte-identity, not approximation.**  The core
mutates the *real* :class:`~repro.service.node.FleetNode` objects with
the same float operations, in the same order, as
``FleetNode.serve``/``serve_active`` — it only inlines them — and the
real :class:`~repro.service.autoscale.Autoscaler` steps the real nodes
at epoch boundaries, so energy books, boot decisions, and
``ServiceReport.to_dict()`` match the reference loop bit for bit (the
equivalence suite pins this across policies, fleets, and seeds).
Floating-point order is load-bearing everywhere: heaps compare exact
``busy_until`` values, interval accumulators add in arrival order, and
no sum is ever re-associated.

Configurations the core cannot reproduce exactly — batching policies
(QED's hold/release protocol), fault schedules, telemetry capture, and
flight recording, all of which hook per-query engine internals — are
declined by :func:`event_core_unsupported`, and ``engine="auto"``
falls back to the reference loop.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush, heapreplace
from typing import Optional, Sequence

import numpy as np

from repro.service.autoscale import Autoscaler
from repro.service.dispatch import (CostAware, DispatchPolicy, LeastLoaded,
                                    PowerAwarePacking, RoundRobin)
from repro.service.node import FleetNode
from repro.service.pvc import PVCPolicy
from repro.service.report import ServiceError
from repro.service.spec import FleetSpec
from repro.service.workload import ArrivalStream

#: arrivals marshalled per chunk — bounds the Python-list working set
#: (a 10M-query stream never holds more than ~1.5 MB of scalar floats)
CHUNK = 65536

_INF = float("inf")

#: routers with a vectorized kernel (exact types: a subclass may
#: override route(), so it must take the reference loop)
_VECTOR_ROUTERS = (RoundRobin, LeastLoaded, PowerAwarePacking, CostAware)


def event_core_unsupported(policy: DispatchPolicy,
                           collector=None,
                           recorder=None,
                           faults: bool = False,
                           stream: Optional[ArrivalStream] = None
                           ) -> Optional[str]:
    """Why this configuration must run on the reference loop.

    Returns ``None`` when the event core can serve it, else a one-line
    reason (used verbatim in the ``engine="event"`` error and useful
    for debugging an unexpected ``auto`` fallback).
    """
    if faults:
        return "fault schedules replay on the reference loop"
    if collector is not None:
        return ("telemetry capture needs the reference loop's "
                "device mirror")
    if recorder is not None:
        return ("flight recording needs the reference loop's "
                "event hooks")
    if stream is not None and policy.admission_limit_seconds is not None \
            and any(t.batch for t in stream.tenants):
        return ("batch tenants are admission-exempt, which the event "
                "core's vectorized admission does not model")
    router = policy.inner if type(policy) is PVCPolicy else policy
    if policy.batching or router.batching:
        return (f"policy {policy.name!r} batches arrivals "
                "(offer/due hold protocol)")
    if type(router) not in _VECTOR_ROUTERS:
        return f"policy {policy.name!r} has no vectorized kernel"
    return None


def serve_event(stream: ArrivalStream,
                fleet: FleetSpec,
                policy: DispatchPolicy,
                autoscaler: Optional[Autoscaler],
                nodes: Sequence[FleetNode],
                on_ids: list[int]) -> tuple[np.ndarray, np.ndarray, float]:
    """Run the event core; returns ``(latencies, admitted,
    last_completion)``.

    ``nodes``/``on_ids`` are the live fleet (mutated in place, exactly
    as the reference loop mutates them); the caller finalizes the
    nodes and assembles the report, so both engines share one tail.
    """
    reason = event_core_unsupported(policy)
    if reason is not None:  # pragma: no cover - guarded by the caller
        raise ServiceError(f"event core cannot run this config: {reason}")
    cols = stream.columns()
    n = len(cols)
    pvc = policy if type(policy) is PVCPolicy else None
    router = policy.inner if pvc is not None else policy
    pvc_tables = None if pvc is None else _pvc_tables(pvc, nodes)
    latencies = np.empty(n)
    rejected: list[int] = []

    rt = type(router)
    if rt is RoundRobin:
        last = _run_round_robin(cols, router, pvc, pvc_tables, nodes,
                                on_ids, latencies, rejected)
    elif rt is LeastLoaded:
        last = _run_least_loaded(cols, router, pvc, pvc_tables, nodes,
                                 on_ids, latencies, rejected)
    elif rt is PowerAwarePacking:
        last = _run_power_aware(cols, router, pvc, pvc_tables, nodes,
                                on_ids, autoscaler, latencies, rejected)
    else:
        last = _run_cost_aware(cols, fleet, router, pvc, pvc_tables,
                               nodes, on_ids, autoscaler, latencies,
                               rejected)

    admitted = np.ones(n, dtype=bool)
    if rejected:
        admitted[np.array(rejected, dtype=np.int64)] = False
    return latencies, admitted, last


# -- shared pieces ----------------------------------------------------

def _pvc_tables(pvc: PVCPolicy, nodes: Sequence[FleetNode]) -> list[list]:
    """Per-node downclock constants, one row per sub-unity step.

    Each row is ``(f, speed_factor * f, busy_watts - idle_watts)`` with
    ``busy_watts = idle + (peak - idle) * f**3`` — the exact
    expressions the reference engine evaluates per arrival
    (``fleet.py``'s cubic draw and ``FleetNode.serve_active``'s scaled
    divisor), precomputed once per (model, step) so byte-identity
    survives the hoisting.
    """
    steps = [f for f in pvc.frequency_steps if f < 1.0]
    by_model: dict = {}
    table = []
    for node in nodes:
        model = node.model
        rows = by_model.get(model)
        if rows is None:
            pmi = model.peak_watts - model.idle_watts
            rows = []
            for f in steps:
                busy_watts = model.idle_watts + pmi * f ** 3
                rows.append((f, model.speed_factor * f,
                             busy_watts - model.idle_watts))
            by_model[model] = rows
        table.append(rows)
    return table


def _epoch_setup(autoscaler: Optional[Autoscaler]) -> tuple[float, float,
                                                            float]:
    """``(epoch, next_epoch, carried demand)`` mirroring the reference
    loop's initialization."""
    if autoscaler is None:
        return 0.0, _INF, 0.0
    return (autoscaler.epoch_seconds, autoscaler.epoch_seconds,
            autoscaler._epoch_demand_seconds)


# -- round_robin ------------------------------------------------------

def _run_round_robin(cols, router: RoundRobin, pvc, pvc_tables,
                     nodes, on_ids, latencies, rejected) -> float:
    """Closed-form rotation: node at slot ``j`` serves the arrival
    lane ``(j - next) % n_on :: n_on``, so every pipe runs as an
    independent scalar recurrence over a strided slice (round_robin is
    never autoscaled, so the rotation never changes mid-run)."""
    times = cols.times
    services = cols.service_seconds
    slas = cols.sla_seconds
    n = len(cols)
    n_on = len(on_ids)
    start0 = router._next
    # route() runs (and counts) for every arrival, rejected included
    router._next = start0 + n
    limit = router.admission_limit_seconds
    outer = pvc.admission_limit_seconds if pvc is not None else None
    headroom = pvc.sla_headroom if pvc is not None else 0.0
    nan = float("nan")
    last_completion = 0.0

    for slot in range(n_on):
        first = (slot - start0) % n_on
        if first >= n:
            continue
        i = on_ids[slot]
        node = nodes[i]
        sf = node.model.speed_factor
        tl = times[first::n_on].tolist()
        sl = services[first::n_on].tolist()
        bu = node.busy_until
        ib = il = ia = 0.0
        cnt = 0
        lats: list[float] = []
        append = lats.append
        if pvc is None and limit is None:
            # the hot homogeneous path: pure FCFS pipe recurrence
            if sf == 1.0:
                for t, s in zip(tl, sl):
                    start = bu if bu > t else t
                    bu = start + s
                    ib += s
                    append(bu - t)
            else:
                for t, s in zip(tl, sl):
                    scaled = s / sf
                    start = bu if bu > t else t
                    bu = start + scaled
                    ib += scaled
                    append(bu - t)
            il = ib  # serve() adds the same sequence to both lanes
            cnt = len(lats)
        elif pvc is None:
            for off, (t, s) in enumerate(zip(tl, sl)):
                backlog = bu - t if bu > t else 0.0
                if backlog > limit:
                    rejected.append(first + off * n_on)
                    append(nan)
                    continue
                scaled = s / sf
                start = bu if bu > t else t
                bu = start + scaled
                ib += scaled
                il += scaled
                cnt += 1
                append(bu - t)
        else:
            ql = slas[first::n_on].tolist()
            steps = pvc_tables[i]
            for off, (t, s, q) in enumerate(zip(tl, sl, ql)):
                backlog = bu - t if bu > t else 0.0
                if (outer is not None and backlog > outer) or \
                        (limit is not None and backlog > limit):
                    rejected.append(first + off * n_on)
                    append(nan)
                    continue
                budget = q * headroom
                execution = s / sf
                picked = None
                for row in steps:
                    if backlog + execution / row[0] <= budget:
                        picked = row
                        break
                if picked is None:
                    scaled = execution
                    start = bu if bu > t else t
                    bu = start + scaled
                    ib += scaled
                    il += scaled
                else:
                    scaled = s / picked[1]
                    start = bu if bu > t else t
                    bu = start + scaled
                    ib += scaled
                    ia += picked[2] * scaled
                cnt += 1
                append(bu - t)
        node.busy_until = bu
        node._interval_busy = ib
        node._interval_linear_busy = il
        node._interval_active_joules = ia
        node.completed = cnt
        if cnt and bu > last_completion:
            last_completion = bu
        latencies[first::n_on] = lats
    return last_completion


# -- least_loaded -----------------------------------------------------

def _run_least_loaded(cols, router: LeastLoaded, pvc, pvc_tables,
                      nodes, on_ids, latencies, rejected) -> float:
    """Join-the-shortest-queue off a ``(busy_until, index)`` heap: the
    root is exactly the reference scan's first-strict-minimum, and
    only the served root ever changes, so the heap is never stale."""
    times = cols.times
    services = cols.service_seconds
    slas = cols.sla_seconds
    n = len(cols)
    limit = router.admission_limit_seconds
    outer = pvc.admission_limit_seconds if pvc is not None else None
    headroom = pvc.sla_headroom if pvc is not None else 0.0
    check = limit is not None or outer is not None
    sf_of = [node.model.speed_factor for node in nodes]
    heap = [(nodes[i].busy_until, i) for i in on_ids]
    heapify(heap)
    bus = [node.busy_until for node in nodes]
    ib_l = [0.0] * len(nodes)
    il_l = [0.0] * len(nodes)
    ia_l = [0.0] * len(nodes)
    cnt_l = [0] * len(nodes)
    nan = float("nan")
    last_completion = 0.0

    for a in range(0, n, CHUNK):
        tl = times[a:a + CHUNK].tolist()
        sl = services[a:a + CHUNK].tolist()
        ql = slas[a:a + CHUNK].tolist()
        lats: list[float] = []
        append = lats.append
        for t, s, q in zip(tl, sl, ql):
            bu, i = heap[0]
            if check:
                backlog = bu - t if bu > t else 0.0
                if (outer is not None and backlog > outer) or \
                        (limit is not None and backlog > limit):
                    rejected.append(a + len(lats))
                    append(nan)
                    continue
            sf = sf_of[i]
            if pvc is None:
                scaled = s / sf
                start = bu if bu > t else t
                end = start + scaled
                il_l[i] += scaled
            else:
                backlog = bu - t if bu > t else 0.0
                budget = q * headroom
                execution = s / sf
                picked = None
                for row in pvc_tables[i]:
                    if backlog + execution / row[0] <= budget:
                        picked = row
                        break
                if picked is None:
                    scaled = execution
                    start = bu if bu > t else t
                    end = start + scaled
                    il_l[i] += scaled
                else:
                    scaled = s / picked[1]
                    start = bu if bu > t else t
                    end = start + scaled
                    ia_l[i] += picked[2] * scaled
            heapreplace(heap, (end, i))
            bus[i] = end
            ib_l[i] += scaled
            cnt_l[i] += 1
            append(end - t)
            if end > last_completion:
                last_completion = end
        latencies[a:a + len(lats)] = lats

    for i in on_ids:
        node = nodes[i]
        node.busy_until = bus[i]
        node._interval_busy = ib_l[i]
        node._interval_linear_busy = il_l[i]
        node._interval_active_joules = ia_l[i]
        node.completed = cnt_l[i]
    return last_completion


# -- power_aware ------------------------------------------------------

def _run_power_aware(cols, router: PowerAwarePacking, pvc, pvc_tables,
                     nodes, on_ids, autoscaler, latencies,
                     rejected) -> float:
    """Packing over two lazy heaps.

    ``waiting`` orders nodes past the pack bound by ``busy_until``;
    per-cost-rate ``pack_heaps`` order the packable candidates by
    index.  The bound ``t + pack_backlog_seconds`` is monotone within
    an epoch segment and ``busy_until`` only grows, so classification
    moves one way between serves and stale entries are recognized by
    exact ``busy_until`` mismatch.  Selection walks rate groups
    ascending — peek, SLA-test, stash-on-miss — reproducing the
    reference scan's candidate order (index order within a rate, the
    cheapest fitting rate wins, cheapest-rate min-index fallback,
    least-loaded spill) without touching every node.
    """
    times = cols.times
    services = cols.service_seconds
    slas = cols.sla_seconds
    n = len(cols)
    n_total = len(nodes)
    pack = router.pack_backlog_seconds
    limit = router.admission_limit_seconds
    outer = pvc.admission_limit_seconds if pvc is not None else None
    headroom = pvc.sla_headroom if pvc is not None else 0.0
    check = limit is not None or outer is not None
    sf_of = [node.model.speed_factor for node in nodes]
    rate_of = [(node.model.peak_watts - node.model.idle_watts)
               / node.model.speed_factor for node in nodes]
    rates = sorted(set(rate_of))
    gid_of = [rates.index(r) for r in rate_of]
    pack_heaps: list[list[int]] = [[] for _ in rates]
    # 0: past the bound (waiting) · 1: packable · 2: powered off
    where = [2] * n_total
    in_pack = [False] * n_total
    waiting: list[tuple[float, int]] = []

    def rebuild() -> None:
        for gh in pack_heaps:
            gh.clear()
        for i in range(n_total):
            where[i] = 2
            in_pack[i] = False
        fresh = []
        for i in on_ids:
            where[i] = 0
            fresh.append((nodes[i].busy_until, i))
        heapify(fresh)
        waiting[:] = fresh

    rebuild()
    epoch, next_epoch, demand = _epoch_setup(autoscaler)
    nan = float("nan")
    last_completion = 0.0

    for a in range(0, n, CHUNK):
        tl = times[a:a + CHUNK].tolist()
        sl = services[a:a + CHUNK].tolist()
        ql = slas[a:a + CHUNK].tolist()
        lats: list[float] = []
        append = lats.append
        for t, s, q in zip(tl, sl, ql):
            if t >= next_epoch:
                while t >= next_epoch:
                    autoscaler._epoch_demand_seconds = demand
                    autoscaler.step(next_epoch, nodes, on_ids)
                    demand = 0.0
                    next_epoch += epoch
                rebuild()
            if autoscaler is not None:
                demand += s
            bound = t + pack
            while waiting and waiting[0][0] <= bound:
                bu_e, i = heappop(waiting)
                if where[i] == 0 and bu_e == nodes[i].busy_until:
                    where[i] = 1
                    if not in_pack[i]:
                        heappush(pack_heaps[gid_of[i]], i)
                        in_pack[i] = True
            chosen = -1
            fallback = -1
            for gh in pack_heaps:
                stash = None
                while gh:
                    i = gh[0]
                    if where[i] != 1:
                        heappop(gh)
                        in_pack[i] = False
                        continue
                    if fallback < 0:
                        fallback = i
                    bu = nodes[i].busy_until
                    est = (bu - t if bu > t else 0.0) + s / sf_of[i]
                    if est <= q:
                        chosen = i
                        break
                    if stash is None:
                        stash = []
                    stash.append(heappop(gh))
                if stash:
                    for x in stash:
                        heappush(gh, x)
                if chosen >= 0:
                    break
            if chosen < 0:
                if fallback >= 0:
                    chosen = fallback  # nothing fits: cheapest rate
                else:
                    while True:  # spill: least-loaded powered-on node
                        bu_e, i = waiting[0]
                        if where[i] == 0 and bu_e == nodes[i].busy_until:
                            chosen = i
                            break
                        heappop(waiting)
            node = nodes[chosen]
            bu = node.busy_until
            if check:
                backlog = bu - t if bu > t else 0.0
                if (outer is not None and backlog > outer) or \
                        (limit is not None and backlog > limit):
                    rejected.append(a + len(lats))
                    append(nan)
                    continue
            if pvc is None:
                scaled = s / sf_of[chosen]
                start = bu if bu > t else t
                end = start + scaled
                node._interval_linear_busy += scaled
            else:
                backlog = bu - t if bu > t else 0.0
                budget = q * headroom
                execution = s / sf_of[chosen]
                picked = None
                for row in pvc_tables[chosen]:
                    if backlog + execution / row[0] <= budget:
                        picked = row
                        break
                if picked is None:
                    scaled = execution
                    start = bu if bu > t else t
                    end = start + scaled
                    node._interval_linear_busy += scaled
                else:
                    scaled = s / picked[1]
                    start = bu if bu > t else t
                    end = start + scaled
                    node._interval_active_joules += picked[2] * scaled
            node.busy_until = end
            node._interval_busy += scaled
            node.completed += 1
            append(end - t)
            if end > last_completion:
                last_completion = end
            if where[chosen] == 1:
                if end > bound:
                    where[chosen] = 0
                    heappush(waiting, (end, chosen))
            else:
                heappush(waiting, (end, chosen))
        latencies[a:a + len(lats)] = lats

    if autoscaler is not None:
        autoscaler._epoch_demand_seconds = demand
    return last_completion


# -- cost_aware -------------------------------------------------------

class _Block:
    """One contiguous class block with a min-``busy_until`` segment
    tree over its node slots (powered-off slots hold +inf)."""

    __slots__ = ("lo", "hi", "sf", "pmi", "size", "seg")

    def __init__(self, lo: int, hi: int, model) -> None:
        self.lo = lo
        self.hi = hi
        self.sf = model.speed_factor
        self.pmi = model.peak_watts - model.idle_watts
        size = 1
        while size < hi - lo:
            size <<= 1
        self.size = size
        self.seg = [_INF] * (2 * size)

    def rebuild(self, nodes) -> None:
        seg = self.seg
        size = self.size
        lo = self.lo
        count = self.hi - lo
        for p in range(size):
            if p < count and nodes[lo + p].on:
                seg[size + p] = nodes[lo + p].busy_until
            else:
                seg[size + p] = _INF
        for p in range(size - 1, 0, -1):
            left = seg[2 * p]
            right = seg[2 * p + 1]
            seg[p] = left if left < right else right

    def update(self, i: int, value: float) -> None:
        p = self.size + (i - self.lo)
        seg = self.seg
        seg[p] = value
        p >>= 1
        while p:
            left = seg[2 * p]
            right = seg[2 * p + 1]
            new = left if left < right else right
            if seg[p] == new:
                break
            seg[p] = new
            p >>= 1

    def leftmost_le(self, x: float) -> int:
        """Lowest node index whose ``busy_until`` is <= ``x`` (the
        caller guarantees one exists)."""
        seg = self.seg
        size = self.size
        p = 1
        while p < size:
            left = 2 * p
            p = left if seg[left] <= x else left + 1
        return self.lo + (p - size)

    def leftmost_fit(self, t: float, scaled: float, budget: float) -> int:
        """Lowest node index whose estimated latency fits ``budget``
        (exact reference predicate, evaluated on subtree minima — it
        is monotone in ``busy_until``, so the descent is exact)."""
        seg = self.seg
        size = self.size
        p = 1
        while p < size:
            left = 2 * p
            v = seg[left]
            if (v - t if v > t else 0.0) + scaled <= budget:
                p = left
            else:
                p = left + 1
        return self.lo + (p - size)


def _run_cost_aware(cols, fleet: FleetSpec, router: CostAware, pvc,
                    pvc_tables, nodes, on_ids, autoscaler, latencies,
                    rejected) -> float:
    """Marginal-Joules routing over per-class segment trees.

    Within a class every node shares the arrival's marginal cost and
    execution time, so the reference scan reduces to per-block
    queries: the block minimum ``busy_until`` decides whether any
    member fits the SLA budget (the estimate is monotone in
    ``busy_until``) and a leftmost descent recovers the exact
    first-index tie-break.  Blocks are index-contiguous in declaration
    order, so taking the first block at a strict minimum reproduces
    the scan's cross-class tie-breaks.
    """
    times = cols.times
    services = cols.service_seconds
    slas = cols.sla_seconds
    n = len(cols)
    slack = router.sla_slack_fraction
    limit = router.admission_limit_seconds
    outer = pvc.admission_limit_seconds if pvc is not None else None
    headroom = pvc.sla_headroom if pvc is not None else 0.0
    check = limit is not None or outer is not None

    blocks: list[_Block] = []
    block_of = [0] * len(nodes)
    lo = 0
    for cls in fleet.classes:
        if cls.count == 0:
            continue
        block = _Block(lo, lo + cls.count, cls.model)
        for i in range(lo, lo + cls.count):
            block_of[i] = len(blocks)
        blocks.append(block)
        lo += cls.count

    def rebuild() -> None:
        for block in blocks:
            block.rebuild(nodes)

    rebuild()
    epoch, next_epoch, demand = _epoch_setup(autoscaler)
    nan = float("nan")
    last_completion = 0.0

    for a in range(0, n, CHUNK):
        tl = times[a:a + CHUNK].tolist()
        sl = services[a:a + CHUNK].tolist()
        ql = slas[a:a + CHUNK].tolist()
        lats: list[float] = []
        append = lats.append
        for t, s, q in zip(tl, sl, ql):
            if t >= next_epoch:
                while t >= next_epoch:
                    autoscaler._epoch_demand_seconds = demand
                    autoscaler.step(next_epoch, nodes, on_ids)
                    demand = 0.0
                    next_epoch += epoch
                rebuild()
            if autoscaler is not None:
                demand += s
            budget = q * slack
            best_cost = _INF
            best_block = None
            best_scaled = 0.0
            fast_est = _INF
            fast_block = None
            for block in blocks:
                m = block.seg[1]
                if m == _INF:
                    continue  # no powered-on member
                scaled_b = s / block.sf
                est = (m - t if m > t else 0.0) + scaled_b
                if est < fast_est:
                    fast_est = est
                    fast_block = block
                if est <= budget:
                    cost = block.pmi * scaled_b
                    if cost < best_cost:
                        best_cost = cost
                        best_block = block
                        best_scaled = scaled_b
            if best_block is not None:
                chosen = best_block.leftmost_fit(t, best_scaled, budget)
                block = best_block
            else:
                m = fast_block.seg[1]
                chosen = fast_block.leftmost_le(m if m > t else t)
                block = fast_block
            node = nodes[chosen]
            bu = node.busy_until
            if check:
                backlog = bu - t if bu > t else 0.0
                if (outer is not None and backlog > outer) or \
                        (limit is not None and backlog > limit):
                    rejected.append(a + len(lats))
                    append(nan)
                    continue
            if pvc is None:
                scaled = s / node.model.speed_factor
                start = bu if bu > t else t
                end = start + scaled
                node._interval_linear_busy += scaled
            else:
                backlog = bu - t if bu > t else 0.0
                pvc_budget = q * headroom
                execution = s / node.model.speed_factor
                picked = None
                for row in pvc_tables[chosen]:
                    if backlog + execution / row[0] <= pvc_budget:
                        picked = row
                        break
                if picked is None:
                    scaled = execution
                    start = bu if bu > t else t
                    end = start + scaled
                    node._interval_linear_busy += scaled
                else:
                    scaled = s / picked[1]
                    start = bu if bu > t else t
                    end = start + scaled
                    node._interval_active_joules += picked[2] * scaled
            node.busy_until = end
            node._interval_busy += scaled
            node.completed += 1
            append(end - t)
            if end > last_completion:
                last_completion = end
            block.update(chosen, end)
        latencies[a:a + len(lats)] = lats

    if autoscaler is not None:
        autoscaler._epoch_demand_seconds = demand
    return last_completion
