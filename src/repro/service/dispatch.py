"""Pluggable routing/admission policies for the cluster dispatcher.

Three built-ins span the energy/latency design space the paper's §4.2
workload-management agenda sketches:

* :class:`RoundRobin` — the oblivious baseline: every node stays on,
  arrivals rotate across the fleet regardless of backlog.
* :class:`LeastLoaded` — join-the-shortest-queue: every node stays on,
  arrivals go to the smallest backlog (the latency-optimal end).
* :class:`PowerAwarePacking` — consolidation in space: arrivals pack
  onto the lowest-indexed node whose backlog is under a bound, so the
  fleet's tail goes cold and the autoscaler can power it off.  Spill
  falls back to least-loaded among powered-on nodes, which is what
  keeps the p95 at or below the oblivious baseline's.

Policies are pure routing functions over node backlogs; admission is a
shared knob (``admission_limit_seconds``) that rejects an arrival when
its chosen node's backlog exceeds the limit — per-tenant rejection
counts land in the :class:`~repro.service.report.ServiceReport`.

Third-party policies register through :func:`register_policy` and are
then addressable by name from :class:`~repro.runner.ExperimentSpec`
knobs, the same extension pattern as
:func:`repro.runner.register_report`.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.service.node import FleetNode
from repro.service.report import ServiceError


class DispatchPolicy:
    """Base routing policy.

    ``autoscaled`` declares whether the policy wants the fleet's
    autoscaler active (packing concentrates load precisely so the
    autoscaler has something to switch off; the all-on baselines do
    not).
    """

    name = "base"
    autoscaled = False

    def __init__(self,
                 admission_limit_seconds: Optional[float] = None) -> None:
        if admission_limit_seconds is not None \
                and admission_limit_seconds <= 0:
            raise ServiceError("admission limit must be positive")
        self.admission_limit_seconds = admission_limit_seconds

    def select(self, nodes: Sequence[FleetNode], on_ids: Sequence[int],
               now: float, service_s: float) -> int:
        """Index (into ``nodes``) of the node to serve this arrival."""
        raise NotImplementedError

    def admits(self, node: FleetNode, now: float) -> bool:
        """Whether the routed arrival is admitted (else: rejected)."""
        limit = self.admission_limit_seconds
        return limit is None or node.backlog(now) <= limit


class RoundRobin(DispatchPolicy):
    """Rotate across powered-on nodes, blind to backlog."""

    name = "round_robin"

    def __init__(self,
                 admission_limit_seconds: Optional[float] = None) -> None:
        super().__init__(admission_limit_seconds)
        self._next = 0

    def select(self, nodes: Sequence[FleetNode], on_ids: Sequence[int],
               now: float, service_s: float) -> int:
        chosen = on_ids[self._next % len(on_ids)]
        self._next += 1
        return chosen


class LeastLoaded(DispatchPolicy):
    """Join the shortest queue (smallest backlog, ties to the lowest
    index)."""

    name = "least_loaded"

    def select(self, nodes: Sequence[FleetNode], on_ids: Sequence[int],
               now: float, service_s: float) -> int:
        best = on_ids[0]
        best_backlog = nodes[best].busy_until
        for i in on_ids[1:]:
            b = nodes[i].busy_until
            if b < best_backlog:
                best, best_backlog = i, b
        return best


class PowerAwarePacking(DispatchPolicy):
    """Pack load onto the lowest-indexed nodes so the rest can sleep.

    Routes to the first powered-on node whose backlog is at most
    ``pack_backlog_seconds``; when every node is past the bound, spills
    to the least-loaded powered-on node (bounding the worst-case wait
    by the fleet-wide minimum backlog, not by an unlucky rotation).
    """

    name = "power_aware"
    autoscaled = True

    def __init__(self, pack_backlog_seconds: float = 0.2,
                 admission_limit_seconds: Optional[float] = None) -> None:
        super().__init__(admission_limit_seconds)
        if pack_backlog_seconds < 0:
            raise ServiceError("pack bound cannot be negative")
        self.pack_backlog_seconds = pack_backlog_seconds

    def select(self, nodes: Sequence[FleetNode], on_ids: Sequence[int],
               now: float, service_s: float) -> int:
        bound = now + self.pack_backlog_seconds
        best = on_ids[0]
        best_backlog = nodes[best].busy_until
        if best_backlog <= bound:
            return best
        for i in on_ids[1:]:
            b = nodes[i].busy_until
            if b <= bound:
                return i
            if b < best_backlog:
                best, best_backlog = i, b
        return best


#: policy name -> factory, for spec knobs and third-party extension
DISPATCH_POLICIES: dict[str, Callable[..., DispatchPolicy]] = {}


def register_policy(factory: Callable[..., DispatchPolicy],
                    name: Optional[str] = None) -> Callable[..., DispatchPolicy]:
    """Register a policy factory under ``name`` (default: its class
    ``name`` attribute); usable as a decorator."""
    DISPATCH_POLICIES[name or factory.name] = factory
    return factory


for _cls in (RoundRobin, LeastLoaded, PowerAwarePacking):
    register_policy(_cls)


def make_policy(policy, **kwargs) -> DispatchPolicy:
    """Resolve a policy name (or pass a ready instance through)."""
    if isinstance(policy, DispatchPolicy):
        return policy
    try:
        factory = DISPATCH_POLICIES[policy]
    except (KeyError, TypeError):
        known = ", ".join(sorted(DISPATCH_POLICIES))
        raise ServiceError(
            f"unknown dispatch policy {policy!r}; registered: {known}"
        ) from None
    return factory(**kwargs)
