"""Pluggable routing/admission policies for the cluster dispatcher.

Four built-ins span the energy/latency design space the paper's §4.2
workload-management agenda sketches:

* :class:`RoundRobin` — the oblivious baseline: every node stays on,
  arrivals rotate across the fleet regardless of backlog.
* :class:`LeastLoaded` — join-the-shortest-queue: every node stays on,
  arrivals go to the smallest backlog (the latency-optimal end).
* :class:`PowerAwarePacking` — consolidation in space: arrivals pack
  onto the lowest-indexed node whose backlog is under a bound, so the
  fleet's tail goes cold and the autoscaler can power it off.  On a
  heterogeneous fleet the packable candidates are grouped by marginal
  Joules per unit of work (``(peak - idle) / speed_factor``): the
  cheapest-per-query class wins whenever a node of it can still meet
  the arrival's SLA, which is the 1208.1933 routing rule.  Spill falls
  back to least-loaded among powered-on nodes.
* :class:`CostAware` — the explicit marginal-cost router: every
  arrival goes to the node that will burn the fewest marginal Joules
  for it (:meth:`DispatchContext.marginal_joules`), among nodes whose
  estimated latency fits the arrival's SLA slack.

Routing decisions read a :class:`DispatchContext` — one documented
dataclass instead of the legacy positional ``(nodes, on_ids, now,
service_s)`` tuple — via :meth:`DispatchPolicy.route`.  Third-party
policies that still override the legacy :meth:`DispatchPolicy.select`
keep working: the base ``route`` delegates to ``select`` when a
subclass implements only the old protocol.

Beyond routing, a policy may opt into two *execution* hooks (see
POLICIES.md for the author's guide):

* **frequency control** — a policy that sets ``dvfs = True`` is asked
  :meth:`DispatchPolicy.frequency` for every admitted arrival and may
  return a DVFS factor below 1.0; the engine then runs the query
  slower (service time divides by the factor) at a cubically lower
  busy draw.  :class:`~repro.service.pvc.PVCPolicy` is the built-in
  governor.
* **batched admission** — a policy that sets ``batching = True`` holds
  arrivals in queues instead of dispatching them immediately; the
  engine drives its :meth:`DispatchPolicy.offer` /
  :meth:`DispatchPolicy.next_deadline` / :meth:`DispatchPolicy.due` /
  :meth:`DispatchPolicy.flush` protocol and executes the released
  :class:`Batch` objects.  :class:`~repro.service.qed.QEDPolicy` is
  the built-in queued-execution policy.

Admission is a shared knob (``admission_limit_seconds``) that rejects
an arrival when its chosen node's backlog exceeds the limit —
per-tenant rejection counts land in the
:class:`~repro.service.report.ServiceReport`.

Third-party policies register through :func:`register_policy` and are
then addressable by name from :class:`~repro.runner.ExperimentSpec`
knobs, the same extension pattern as
:func:`repro.runner.register_report`.  Factories declare their knobs
through their signatures: :func:`make_policy` rejects unknown
``**policy_kwargs`` with the same one-line :class:`ServiceError` style
as :meth:`repro.runner.registry.ExperimentDef.validate_knobs`.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.service.node import FleetNode
from repro.service.report import ServiceError


@dataclass(frozen=True, slots=True)
class DispatchContext:
    """Everything a routing decision may read, for one arrival.

    ``nodes`` is the whole fleet (indexable by the returned id) and
    ``on_ids`` the ascending candidate indices the policy may choose
    from.  ``sla_seconds`` is the arriving tenant's p95 target when the
    engine knows it (``None`` from legacy call sites), which is what
    lets class-aware policies trade a slower-but-cheaper node against
    the arrival's latency budget.
    """

    nodes: Sequence[FleetNode]
    on_ids: Sequence[int]
    now: float
    service_seconds: float
    #: the arriving tenant's p95 SLA target (None: unknown)
    sla_seconds: Optional[float] = None

    def scaled_service_seconds(self, i: int) -> float:
        """This arrival's execution time on node ``i``'s class."""
        return self.service_seconds / self.nodes[i].model.speed_factor

    def estimated_latency_seconds(self, i: int) -> float:
        """Queueing estimate: node ``i``'s backlog plus execution."""
        return self.nodes[i].backlog(self.now) \
            + self.scaled_service_seconds(i)

    def marginal_watts(self, i: int) -> float:
        """Extra draw node ``i`` adds while busy (peak minus idle)."""
        model = self.nodes[i].model
        return model.peak_watts - model.idle_watts

    def marginal_joules(self, i: int) -> float:
        """Marginal energy of running this arrival on node ``i``:
        execution seconds on its class times its marginal watts."""
        return self.marginal_watts(i) * self.scaled_service_seconds(i)

    def marginal_cost_rate(self, i: int) -> float:
        """Marginal Joules per unit of speed-1 work on node ``i`` —
        the class-ranking constant (arrival-independent)."""
        model = self.nodes[i].model
        return (model.peak_watts - model.idle_watts) / model.speed_factor

    def fits_sla(self, i: int, slack_fraction: float = 1.0) -> bool:
        """Whether node ``i``'s estimated latency fits the arrival's
        SLA budget (vacuously true when the SLA is unknown)."""
        if self.sla_seconds is None:
            return True
        return self.estimated_latency_seconds(i) \
            <= self.sla_seconds * slack_fraction


@dataclass(frozen=True, slots=True)
class Batch:
    """One released group of held arrivals, executed as shared work.

    ``members`` are arrival indices into the stream (in hold order,
    oldest first); ``release_at`` is the instant the batch leaves its
    hold queue (>= every member's arrival time); ``service_seconds``
    is the *combined* speed-1 demand of the shared execution — the
    first member's full cost plus the unshared remainder of each
    follower.  A batch of one with zero hold is exactly the member's
    original arrival, which is what makes the degenerate
    configuration byte-identical to un-batched dispatch.
    """

    members: tuple[int, ...]
    release_at: float
    service_seconds: float
    #: the members' tenant p95 SLA target (one queue = one tenant)
    sla_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.members:
            raise ServiceError("empty batch")
        if self.service_seconds <= 0:
            raise ServiceError("batch service time must be positive")


class DispatchPolicy:
    """Base routing policy.

    ``autoscaled`` declares whether the policy wants the fleet's
    autoscaler active (packing concentrates load precisely so the
    autoscaler has something to switch off; the all-on baselines do
    not).  ``dvfs`` declares the frequency-control hook
    (:meth:`frequency`) and ``batching`` the queued-admission hook
    (:meth:`offer` and friends); both default off, so plain routing
    policies never pay for them.

    Subclasses implement :meth:`route` (preferred: reads a
    :class:`DispatchContext`) or the legacy positional :meth:`select`;
    each base method delegates to the other, so either protocol alone
    is a complete policy.
    """

    name = "base"
    autoscaled = False
    #: True: the engine asks :meth:`frequency` per admitted arrival
    dvfs = False
    #: True: the engine drives the offer/due/flush hold protocol
    batching = False

    def __init__(self,
                 admission_limit_seconds: Optional[float] = None) -> None:
        if admission_limit_seconds is not None \
                and admission_limit_seconds <= 0:
            raise ServiceError("admission limit must be positive")
        self.admission_limit_seconds = admission_limit_seconds

    def route(self, ctx: DispatchContext) -> int:
        """Index (into ``ctx.nodes``) of the node to serve this
        arrival."""
        if type(self).select is DispatchPolicy.select:
            raise ServiceError(
                f"policy {self.name!r} implements neither route() nor "
                "select()")
        return self.select(ctx.nodes, ctx.on_ids, ctx.now,
                           ctx.service_seconds)

    def select(self, nodes: Sequence[FleetNode], on_ids: Sequence[int],
               now: float, service_s: float) -> int:
        """Legacy positional entry point (kept for third-party
        policies and direct callers); new policies override
        :meth:`route` instead."""
        if type(self).route is DispatchPolicy.route:
            raise ServiceError(
                f"policy {self.name!r} implements neither route() nor "
                "select()")
        return self.route(DispatchContext(nodes, on_ids, now, service_s))

    def admits(self, node: FleetNode, now: float) -> bool:
        """Whether the routed arrival is admitted (else: rejected)."""
        limit = self.admission_limit_seconds
        return limit is None or node.backlog(now) <= limit

    # -- execution hooks (opt-in; see POLICIES.md) --------------------

    def frequency(self, ctx: DispatchContext, i: int) -> float:
        """DVFS factor for the routed execution on node ``i``.

        Only consulted when the policy declares ``dvfs = True``.  A
        factor ``f < 1`` runs the query ``1/f`` times slower at busy
        draw ``idle + (peak - idle) * f**3`` (the cubic dynamic-power
        rule); ``1.0`` is the unthrottled baseline path.
        """
        return 1.0

    def offer(self, k: int, now: float, service_seconds: float,
              tenant: int, sla_seconds: Optional[float]) -> list[Batch]:
        """Admit arrival ``k`` into the policy's hold queues.

        Only consulted when the policy declares ``batching = True``.
        Returns the batches this arrival forces out *right now* (a
        full queue, or a zero hold window); an empty list means the
        arrival is held for a later :meth:`due`/:meth:`flush` release.
        """
        raise ServiceError(
            f"policy {self.name!r} declares batching but implements no "
            "offer()")

    def next_deadline(self) -> float:
        """Earliest instant a held queue must release (``inf``: none
        held).  Only consulted when ``batching = True``."""
        return float("inf")

    def due(self, now: float) -> list[Batch]:
        """Release every queue whose deadline has arrived by ``now``."""
        return []

    def flush(self) -> list[Batch]:
        """End of the stream: release everything still held, each
        batch at its own deadline, ascending."""
        return []


class RoundRobin(DispatchPolicy):
    """Rotate across powered-on nodes, blind to backlog."""

    name = "round_robin"

    def __init__(self,
                 admission_limit_seconds: Optional[float] = None) -> None:
        super().__init__(admission_limit_seconds)
        self._next = 0

    def select(self, nodes: Sequence[FleetNode], on_ids: Sequence[int],
               now: float, service_s: float) -> int:
        chosen = on_ids[self._next % len(on_ids)]
        self._next += 1
        return chosen


class LeastLoaded(DispatchPolicy):
    """Join the shortest queue (smallest backlog, ties to the lowest
    index)."""

    name = "least_loaded"

    def select(self, nodes: Sequence[FleetNode], on_ids: Sequence[int],
               now: float, service_s: float) -> int:
        best = on_ids[0]
        best_backlog = nodes[best].busy_until
        for i in on_ids[1:]:
            b = nodes[i].busy_until
            if b < best_backlog:
                best, best_backlog = i, b
        return best


class PowerAwarePacking(DispatchPolicy):
    """Pack load onto the cheapest nodes so the rest can sleep.

    Packable candidates are the powered-on nodes whose backlog is at
    most ``pack_backlog_seconds``.  On a single-class fleet the first
    candidate in index order wins — exactly the classic packing rule.
    On a heterogeneous fleet, candidates are ranked by marginal Joules
    per unit of work (:meth:`DispatchContext.marginal_cost_rate`):
    the cheapest class that can still meet the arrival's SLA takes the
    query (lowest index within the class); if no candidate fits the
    SLA, the cheapest class takes it anyway (the SLA is already lost —
    don't also lose the Joules).  When every node is past the pack
    bound, spills to the least-loaded powered-on node (bounding the
    worst-case wait by the fleet-wide minimum backlog, not by an
    unlucky rotation).
    """

    name = "power_aware"
    autoscaled = True

    def __init__(self, pack_backlog_seconds: float = 0.2,
                 admission_limit_seconds: Optional[float] = None) -> None:
        super().__init__(admission_limit_seconds)
        if pack_backlog_seconds < 0:
            raise ServiceError("pack bound cannot be negative")
        self.pack_backlog_seconds = pack_backlog_seconds

    def route(self, ctx: DispatchContext) -> int:
        nodes = ctx.nodes
        on_ids = ctx.on_ids
        bound = ctx.now + self.pack_backlog_seconds
        first = on_ids[0]
        best = first
        best_backlog = nodes[first].busy_until
        candidates = [first] if best_backlog <= bound else []
        for i in on_ids[1:]:
            b = nodes[i].busy_until
            if b <= bound:
                candidates.append(i)
            elif b < best_backlog:
                best, best_backlog = i, b
        if not candidates:
            return best  # spill: least-loaded powered-on node
        base_rate = ctx.marginal_cost_rate(candidates[0])
        if all(ctx.marginal_cost_rate(i) == base_rate
               for i in candidates[1:]):
            # single-class fast path: first packable node in index
            # order, exactly the classic packing rule
            for i in candidates:
                if ctx.fits_sla(i):
                    return i
            return candidates[0]
        rates = sorted({ctx.marginal_cost_rate(i) for i in candidates})
        for rate in rates:
            for i in candidates:
                if ctx.marginal_cost_rate(i) == rate \
                        and ctx.fits_sla(i):
                    return i
        for i in candidates:  # nothing fits: cheapest class anyway
            if ctx.marginal_cost_rate(i) == rates[0]:
                return i
        raise ServiceError("unreachable: packing lost its candidates")


class CostAware(DispatchPolicy):
    """Route each arrival to its cheapest marginal-Joules node.

    The explicit form of the 1208.1933 rule: among powered-on nodes
    whose estimated latency (backlog + execution on that class) fits
    the arrival's SLA times ``sla_slack_fraction``, take the one whose
    marginal Joules for this arrival are lowest (ties to the lowest
    index, which keeps the tail cold for the autoscaler).  When no
    node fits the budget, falls back to the lowest estimated latency.
    """

    name = "cost_aware"
    autoscaled = True

    def __init__(self, sla_slack_fraction: float = 1.0,
                 admission_limit_seconds: Optional[float] = None) -> None:
        super().__init__(admission_limit_seconds)
        if sla_slack_fraction <= 0:
            raise ServiceError("SLA slack fraction must be positive")
        self.sla_slack_fraction = sla_slack_fraction

    def route(self, ctx: DispatchContext) -> int:
        best = -1
        best_cost = float("inf")
        fastest = ctx.on_ids[0]
        fastest_latency = float("inf")
        for i in ctx.on_ids:
            latency = ctx.estimated_latency_seconds(i)
            if latency < fastest_latency:
                fastest, fastest_latency = i, latency
            if ctx.sla_seconds is not None and latency \
                    > ctx.sla_seconds * self.sla_slack_fraction:
                continue
            cost = ctx.marginal_joules(i)
            if cost < best_cost:
                best, best_cost = i, cost
        return best if best >= 0 else fastest


def dispatch_candidates(ctx: DispatchContext, chosen: int) -> dict:
    """The considered-candidate table behind one routing decision.

    One row per powered-on node: ``[index, marginal watts, marginal
    Joules for this arrival, estimated latency, fits-SLA]`` — the same
    quantities the cost-aware and packing routers rank on.  The flight
    recorder emits this (detail mode) so a recording can answer not
    just *where* an arrival went but what the alternatives would have
    cost in Joules and SLA slack.
    """
    return {
        "chosen": chosen,
        "candidates": [
            [i, ctx.marginal_watts(i), ctx.marginal_joules(i),
             ctx.estimated_latency_seconds(i), bool(ctx.fits_sla(i))]
            for i in ctx.on_ids],
    }


#: policy name -> factory, for spec knobs and third-party extension
DISPATCH_POLICIES: dict[str, Callable[..., DispatchPolicy]] = {}


def register_policy(factory: Callable[..., DispatchPolicy],
                    name: Optional[str] = None) -> Callable[..., DispatchPolicy]:
    """Register a policy factory under ``name`` (default: its class
    ``name`` attribute); usable as a decorator."""
    DISPATCH_POLICIES[name or factory.name] = factory
    return factory


for _cls in (RoundRobin, LeastLoaded, PowerAwarePacking):
    register_policy(_cls)
register_policy(CostAware)


def _lookup_policy(policy) -> Callable[..., DispatchPolicy]:
    try:
        return DISPATCH_POLICIES[policy]
    except (KeyError, TypeError):
        known = ", ".join(sorted(DISPATCH_POLICIES))
        raise ServiceError(
            f"unknown dispatch policy {policy!r}; registered: {known}"
        ) from None


def policy_knob_names(policy: str) -> set[str]:
    """Knob names the registered ``policy``'s factory declares in its
    signature — the policy analogue of
    :meth:`repro.runner.registry.ExperimentDef.knob_names`."""
    params = inspect.signature(_lookup_policy(policy)).parameters
    return {p.name for p in params.values()
            if p.kind in (p.POSITIONAL_OR_KEYWORD, p.KEYWORD_ONLY)}


def make_policy(policy, **kwargs) -> DispatchPolicy:
    """Resolve a policy name (or pass a ready instance through).

    Factories declare their knobs through their signatures; unknown
    ``kwargs`` are rejected by name, same one-liner style as the
    runner's knob validation.
    """
    if isinstance(policy, DispatchPolicy):
        if kwargs:
            raise ServiceError(
                f"policy {policy.name!r} is already constructed; knob(s) "
                f"{', '.join(map(repr, sorted(kwargs)))} cannot apply")
        return policy
    factory = _lookup_policy(policy)
    params = inspect.signature(factory).parameters
    if not any(p.kind is p.VAR_KEYWORD for p in params.values()):
        valid = policy_knob_names(policy)
        unknown = sorted(set(kwargs) - valid)
        if unknown:
            raise ServiceError(
                f"unknown knob(s) {', '.join(map(repr, unknown))} for "
                f"policy {policy!r}; valid knobs: "
                f"{', '.join(sorted(valid))}")
    return factory(**kwargs)
