"""Energy-aware query optimization (paper §4.1).

The optimizer mirrors the executor's cost arithmetic: a time model and a
power model over the same device constants, combined under a selectable
objective (time, energy, or energy-delay product).  "To improve energy
efficiency, query optimizers will need power models to estimate energy
costs" — this package is that machinery.
"""

from repro.optimizer.stats import ColumnStats, TableStatistics, analyze_table
from repro.optimizer.cost import CostModel, PlanCost
from repro.optimizer.objective import Objective, WeightedObjective, score
from repro.optimizer.planner import Planner, QuerySpec
from repro.optimizer.knobs import SystemKnobs
from repro.optimizer.advisor import DesignAdvisor, DesignChoice

__all__ = [
    "ColumnStats",
    "CostModel",
    "DesignAdvisor",
    "DesignChoice",
    "Objective",
    "PlanCost",
    "Planner",
    "QuerySpec",
    "SystemKnobs",
    "TableStatistics",
    "WeightedObjective",
    "analyze_table",
    "score",
]
