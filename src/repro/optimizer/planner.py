"""Cost-based planner: join ordering and algorithm choice per objective.

Dynamic programming over connected join subsets (System-R style), with
three join implementations per step (hash, sort-merge, block nested
loop) and two aggregation strategies, all priced by the
:class:`~repro.optimizer.cost.CostModel` under the caller's
:class:`~repro.optimizer.objective.Objective`.  Because the power model
prices the hash join's memory grant, switching the objective from TIME
to ENERGY can flip plan shapes — the §4.1 prediction, testable here.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence, Union

from repro.errors import OptimizerError
from repro.relational.expr import (
    Between,
    BoolOp,
    ColumnRef,
    Comparison,
    Expr,
    Literal,
    col,
)
from repro.relational.operators import (
    AggregateSpec,
    BlockNestedLoopJoin,
    Filter,
    HashAggregate,
    HashJoin,
    IndexNestedLoopJoin,
    IndexScan,
    Limit,
    Operator,
    Sort,
    SortMergeJoin,
    SortedAggregate,
    TableScan,
)
from repro.optimizer.cost import CostModel, PlanCost
from repro.optimizer.objective import Objective, WeightedObjective, score
from repro.storage.manager import Table

Builder = Callable[[], Operator]
ObjectiveLike = Union[Objective, WeightedObjective]


def split_conjuncts(expr: Optional[Expr]) -> list[Expr]:
    """Flatten an AND tree into its conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, BoolOp) and expr.op == "and":
        out: list[Expr] = []
        for operand in expr.operands:
            out.extend(split_conjuncts(operand))
        return out
    return [expr]


def conjoin(conjuncts: Sequence[Expr]) -> Optional[Expr]:
    """Re-combine conjuncts into one predicate (None if empty)."""
    if not conjuncts:
        return None
    if len(conjuncts) == 1:
        return conjuncts[0]
    return BoolOp("and", list(conjuncts))


def sargable_bounds(conjunct: Expr, column: str
                    ) -> Optional[tuple[Any, Any]]:
    """(low, high) bounds if ``conjunct`` is an index-usable restriction
    of ``column`` (either bound may be None)."""
    if isinstance(conjunct, Between):
        if (isinstance(conjunct.value, ColumnRef)
                and conjunct.value.name == column
                and isinstance(conjunct.low, Literal)
                and isinstance(conjunct.high, Literal)):
            return conjunct.low.value, conjunct.high.value
        return None
    if not isinstance(conjunct, Comparison):
        return None
    sides = None
    if (isinstance(conjunct.left, ColumnRef)
            and conjunct.left.name == column
            and isinstance(conjunct.right, Literal)):
        sides = (conjunct.op, conjunct.right.value)
    elif (isinstance(conjunct.right, ColumnRef)
          and conjunct.right.name == column
          and isinstance(conjunct.left, Literal)):
        flip = {"<": ">", ">": "<", "<=": ">=", ">=": "<=", "=": "="}
        if conjunct.op not in flip:
            return None
        sides = (flip[conjunct.op], conjunct.left.value)
    if sides is None:
        return None
    op, value = sides
    if op == "=":
        return value, value
    if op in ("<", "<="):
        return None, value
    if op in (">", ">="):
        return value, None
    return None


@dataclass
class TableRef:
    """One base relation in a query, with an optional local predicate."""

    table: Table
    predicate: Optional[Expr] = None
    columns: Optional[list[str]] = None

    @property
    def name(self) -> str:
        return self.table.name


@dataclass
class JoinEdge:
    """An equi-join between two base relations."""

    left_table: str
    right_table: str
    left_keys: list[str]
    right_keys: list[str]

    def __post_init__(self) -> None:
        if len(self.left_keys) != len(self.right_keys) or not self.left_keys:
            raise OptimizerError("join edge needs matching key lists")


@dataclass
class QuerySpec:
    """A declarative query for the planner."""

    tables: list[TableRef]
    joins: list[JoinEdge] = field(default_factory=list)
    group_by: list[str] = field(default_factory=list)
    aggregates: list[AggregateSpec] = field(default_factory=list)
    order_by: list[str] = field(default_factory=list)
    limit: Optional[int] = None


@dataclass
class PlannedQuery:
    """The planner's output: a plan, its predicted cost, and rivals."""

    root: Operator
    cost: PlanCost
    objective: ObjectiveLike
    candidates_considered: int


class Planner:
    """Chooses the cheapest plan under an objective."""

    def __init__(self, cost_model: CostModel,
                 objective: ObjectiveLike = Objective.TIME) -> None:
        self.cost_model = cost_model
        self.objective = objective
        self._considered = 0

    # -- public ----------------------------------------------------------
    def plan(self, spec: QuerySpec) -> PlannedQuery:
        """Optimize a query spec into a physical plan."""
        if not spec.tables:
            raise OptimizerError("query needs at least one table")
        names = [t.name for t in spec.tables]
        if len(set(names)) != len(names):
            raise OptimizerError("duplicate tables; self-joins need aliases")
        self._considered = 0
        best_builder = self._plan_joins(spec)
        builder = self._add_post_join(spec, best_builder)
        root = builder()
        return PlannedQuery(
            root=root,
            cost=self.cost_model.cost(builder()),
            objective=self.objective,
            candidates_considered=self._considered,
        )

    def _score(self, cost: PlanCost) -> float:
        if isinstance(self.objective, WeightedObjective):
            return self.objective.score(cost)
        return score(cost, self.objective)

    # -- join enumeration --------------------------------------------------
    def _columns_for(self, ref: TableRef,
                     needed: dict[str, set[str]]) -> Optional[list[str]]:
        return ref.columns or sorted(
            needed[ref.name] & set(ref.table.schema.column_names())) or None

    def _access_paths(self, ref: TableRef,
                      needed: dict[str, set[str]]) -> list[Builder]:
        """All single-relation access paths: full scan plus any usable
        index scans (with residual filters)."""
        from repro.relational.expr import fold_constants
        columns = self._columns_for(ref, needed)
        predicate = (fold_constants(ref.predicate)
                     if ref.predicate is not None else None)

        def full_scan() -> Operator:
            return TableScan(ref.table, columns=columns,
                             predicate=predicate)

        paths: list[Builder] = [full_scan]
        conjuncts = split_conjuncts(predicate)
        for position, conjunct in enumerate(conjuncts):
            for column, _index in ref.table.indexes.items():
                bounds = sargable_bounds(conjunct, column)
                if bounds is None:
                    continue
                low, high = bounds
                residual = conjoin(conjuncts[:position]
                                   + conjuncts[position + 1:])

                def index_path(low=low, high=high, column=column,
                               residual=residual) -> Operator:
                    scan: Operator = IndexScan(ref.table, column,
                                               low=low, high=high,
                                               columns=columns)
                    if residual is not None:
                        scan = Filter(scan, residual)
                    return scan

                paths.append(index_path)
        return paths

    def _plan_joins(self, spec: QuerySpec) -> Builder:
        refs = {t.name: t for t in spec.tables}
        needed = self._needed_columns(spec)

        # DP table: frozenset of names -> (builder, cost, score)
        best: dict[frozenset, tuple[Builder, PlanCost, float]] = {}
        for name in refs:
            entry = None
            for builder in self._access_paths(refs[name], needed):
                cost = self.cost_model.cost(builder())
                self._considered += 1
                candidate_score = self._score(cost)
                if entry is None or candidate_score < entry[2]:
                    entry = (builder, cost, candidate_score)
            assert entry is not None
            best[frozenset([name])] = entry
        n = len(refs)
        if n == 1:
            return best[frozenset(refs)][0]
        if not spec.joins:
            raise OptimizerError("multi-table query without join edges "
                                 "(cross products not supported)")
        all_names = frozenset(refs)
        for size in range(2, n + 1):
            for subset in map(frozenset,
                              itertools.combinations(sorted(refs), size)):
                candidates = []
                for right_name in sorted(subset):
                    left_set = subset - {right_name}
                    if left_set not in best:
                        continue
                    edge_keys = self._connecting_keys(
                        spec.joins, left_set, right_name)
                    if edge_keys is None:
                        continue
                    left_keys, right_keys = edge_keys
                    left_entry = best[left_set]
                    right_builder = best[frozenset([right_name])][0]
                    candidates.extend(self._join_candidates(
                        left_entry[0], right_builder, left_keys, right_keys,
                        refs[right_name], needed))
                if not candidates:
                    if subset == all_names or size == n:
                        raise OptimizerError(
                            f"join graph is disconnected for {sorted(subset)}")
                    continue
                best_entry = None
                for builder in candidates:
                    self._considered += 1
                    try:
                        cost = self.cost_model.cost(builder())
                    except OptimizerError:
                        continue
                    entry_score = self._score(cost)
                    if best_entry is None or entry_score < best_entry[2]:
                        best_entry = (builder, cost, entry_score)
                if best_entry is not None:
                    best[subset] = best_entry
        if all_names not in best:
            raise OptimizerError("could not connect all tables via joins")
        return best[all_names][0]

    def _join_candidates(self, left_builder: Builder,
                         right_builder: Builder,
                         left_keys: list[str], right_keys: list[str],
                         right_ref: TableRef,
                         needed: dict[str, set[str]]) -> list[Builder]:
        """All physical implementations of one join step."""
        candidates: list[Builder] = [
            # hash join, building on either side
            lambda: HashJoin(right_builder(), left_builder(),
                             right_keys, left_keys),
            lambda: HashJoin(left_builder(), right_builder(),
                             left_keys, right_keys),
            lambda: SortMergeJoin(left_builder(), right_builder(),
                                  left_keys, right_keys),
        ]
        if len(left_keys) == 1:
            lk, rk = left_keys[0], right_keys[0]
            columns = self._columns_for(right_ref, needed)

            def nlj() -> Operator:
                # classic block NLJ re-reads the raw inner table
                inner = TableScan(right_ref.table, columns=columns,
                                  predicate=right_ref.predicate)
                return BlockNestedLoopJoin(
                    left_builder(), inner, predicate=col(lk) == col(rk))

            candidates.append(nlj)
            if (right_ref.table.index_on(rk) is not None
                    and right_ref.predicate is None):
                def index_nlj() -> Operator:
                    return IndexNestedLoopJoin(
                        left_builder(), right_ref.table, rk, lk,
                        inner_columns=columns)

                candidates.append(index_nlj)
        return candidates

    def _connecting_keys(self, joins: Sequence[JoinEdge],
                         left_set: frozenset, right_name: str
                         ) -> Optional[tuple[list[str], list[str]]]:
        """Keys joining ``right_name`` to any relation in ``left_set``."""
        left_keys: list[str] = []
        right_keys: list[str] = []
        for edge in joins:
            if edge.right_table == right_name and edge.left_table in left_set:
                left_keys.extend(edge.left_keys)
                right_keys.extend(edge.right_keys)
            elif edge.left_table == right_name and edge.right_table in left_set:
                left_keys.extend(edge.right_keys)
                right_keys.extend(edge.left_keys)
        if not left_keys:
            return None
        return left_keys, right_keys

    # -- post-join operators ------------------------------------------------
    def _add_post_join(self, spec: QuerySpec, builder: Builder) -> Builder:
        result = builder
        if spec.aggregates or spec.group_by:
            result = self._best_aggregation(spec, result)
        if spec.order_by:
            prev = result
            result = lambda: Sort(prev(), spec.order_by)  # noqa: E731
        if spec.limit is not None:
            prev2 = result
            result = lambda: Limit(prev2(), spec.limit)  # noqa: E731
        return result

    def _best_aggregation(self, spec: QuerySpec, builder: Builder) -> Builder:
        def hash_based() -> Operator:
            return HashAggregate(builder(), spec.group_by, spec.aggregates)

        if not spec.group_by:
            return hash_based

        def sort_based() -> Operator:
            return SortedAggregate(Sort(builder(), spec.group_by),
                                   spec.group_by, spec.aggregates)

        choices = []
        for candidate in (hash_based, sort_based):
            self._considered += 1
            cost = self.cost_model.cost(candidate())
            choices.append((self._score(cost), candidate))
        choices.sort(key=lambda pair: pair[0])
        return choices[0][1]

    # -- column pruning --------------------------------------------------------
    def _needed_columns(self, spec: QuerySpec) -> dict[str, set[str]]:
        """Columns each base table must project."""
        needed: dict[str, set[str]] = {t.name: set() for t in spec.tables}
        global_needs: set[str] = set(spec.group_by) | set(spec.order_by)
        for agg in spec.aggregates:
            if agg.expr is not None:
                global_needs |= agg.expr.columns()
        if not spec.aggregates and not spec.group_by:
            # no aggregation: the query returns all projected columns
            for ref in spec.tables:
                needed[ref.name] |= set(
                    ref.columns or ref.table.schema.column_names())
        for edge in spec.joins:
            for ref in spec.tables:
                if ref.name == edge.left_table:
                    needed[ref.name] |= set(edge.left_keys)
                if ref.name == edge.right_table:
                    needed[ref.name] |= set(edge.right_keys)
        for ref in spec.tables:
            if ref.predicate is not None:
                needed[ref.name] |= (ref.predicate.columns()
                                     & set(ref.table.schema.column_names()))
            needed[ref.name] |= (global_needs
                                 & set(ref.table.schema.column_names()))
        return needed
