"""Time + energy cost model over physical operator trees.

The model mirrors the executor's replay arithmetic: it walks an operator
tree *without executing it*, predicts each pipeline's CPU cycles and I/O
bytes from table statistics, converts them to seconds against the target
server's devices, and prices energy under two accounting conventions:

* ``energy_full_joules`` — whole-system energy for the query's duration
  (idle draw included), what a wall meter would see;
* ``energy_attributed_joules`` — busy-time-only accounting (the paper's
  Figure 2 convention).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.errors import OptimizerError
from repro.hardware.disk import HardDisk
from repro.relational.operators import (
    BlockNestedLoopJoin,
    Exchange,
    Filter,
    HashAggregate,
    HashJoin,
    Limit,
    Operator,
    Project,
    Sort,
    SortMergeJoin,
    SortedAggregate,
    TableScan,
)
from repro.relational.operators.base import CostParameters
from repro.optimizer.stats import (
    ColumnStats,
    TableStatistics,
    analyze_table,
    estimate_selectivity,
)
from repro.units import GIB, MIB

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.raid import RaidArray
    from repro.hardware.server import Server


@dataclass
class PipelineEstimate:
    """Predicted cost of one pipeline (scaled units).

    ``arrays`` holds (array, nbytes, n_random_requests) triples;
    random requests charge positioning instead of streaming.
    """

    cpu_cycles: float = 0.0
    io_bytes: float = 0.0
    arrays: list = field(default_factory=list)
    dram_grant_bytes: float = 0.0
    parallelism: int = 1

    # filled in by the conversion step
    cpu_seconds: float = 0.0
    io_seconds: float = 0.0
    seconds: float = 0.0


@dataclass
class PlanCost:
    """Predicted totals for a plan."""

    seconds: float
    cpu_seconds: float
    io_seconds: float
    energy_full_joules: float
    energy_attributed_joules: float
    out_rows: float
    pipelines: list[PipelineEstimate] = field(default_factory=list)

    def energy_delay_product(self, attributed: bool = False) -> float:
        energy = (self.energy_attributed_joules if attributed
                  else self.energy_full_joules)
        return energy * self.seconds


class _Estimate:
    """Cardinality + per-column stats flowing up the tree."""

    def __init__(self, rows: float, columns: dict[str, ColumnStats]) -> None:
        self.rows = rows
        self.columns = columns


class CostModel:
    """Costs operator trees against one server's hardware."""

    def __init__(self, server: "Server",
                 params: Optional[CostParameters] = None,
                 scale: float = 1.0,
                 chunk_bytes: float = 4 * MIB) -> None:
        if scale <= 0:
            raise OptimizerError("scale must be positive")
        self.server = server
        self.params = params or CostParameters()
        self.scale = scale
        self.chunk_bytes = chunk_bytes
        self._stats_cache: dict[str, TableStatistics] = {}

    # -- statistics --------------------------------------------------------
    def statistics_for(self, table) -> TableStatistics:
        """Cached ANALYZE of a table."""
        if table.name not in self._stats_cache:
            self._stats_cache[table.name] = analyze_table(table)
        return self._stats_cache[table.name]

    def set_statistics(self, name: str, stats: TableStatistics) -> None:
        """Inject statistics (e.g. from the catalog) instead of analyzing."""
        self._stats_cache[name] = stats

    # -- entry point --------------------------------------------------------
    def cost(self, root: Operator) -> PlanCost:
        """Predict the full cost of a plan."""
        pipelines: list[PipelineEstimate] = [PipelineEstimate()]
        estimate = self._walk(root, pipelines)
        for pipeline in pipelines:
            self._convert(pipeline)
        seconds = sum(p.seconds for p in pipelines)
        cpu_seconds = sum(p.cpu_seconds for p in pipelines)
        io_seconds = sum(p.io_seconds for p in pipelines)
        full, attributed = self._energy(pipelines)
        return PlanCost(
            seconds=seconds, cpu_seconds=cpu_seconds, io_seconds=io_seconds,
            energy_full_joules=full, energy_attributed_joules=attributed,
            out_rows=estimate.rows, pipelines=pipelines)

    # -- per-pipeline conversion ------------------------------------------------
    def _convert(self, pipeline: PipelineEstimate) -> None:
        cpu = self.server.cpu
        degree = min(pipeline.parallelism, cpu.spec.cores)
        pipeline.cpu_seconds = pipeline.cpu_cycles / (
            cpu.effective_frequency_hz * degree)
        pipeline.io_seconds = self._io_seconds(pipeline)
        pipeline.seconds = max(pipeline.cpu_seconds, pipeline.io_seconds)

    def _io_seconds(self, pipeline: PipelineEstimate) -> float:
        if pipeline.io_bytes <= 0:
            return 0.0
        total = 0.0
        for array, nbytes, n_random in pipeline.arrays:
            bandwidth = sum(
                getattr(m.spec, "bandwidth_bytes_per_s", None)
                or m.spec.read_bandwidth_bytes_per_s
                for m in array.members)
            member = array.members[0]
            if n_random > 0:
                # random requests spread over the members in parallel
                per_member = n_random / array.width
                if isinstance(member, HardDisk):
                    overhead = per_member * (
                        member.spec.positioning_seconds
                        + member.spec.per_request_overhead_seconds)
                else:
                    overhead = per_member \
                        * member.spec.per_request_latency_seconds
            else:
                n_chunks = max(1.0, math.ceil(nbytes / self.chunk_bytes))
                if isinstance(member, HardDisk):
                    overhead = (member.spec.positioning_seconds
                                + n_chunks
                                * member.spec.per_request_overhead_seconds)
                else:
                    overhead = n_chunks \
                        * member.spec.per_request_latency_seconds
            total += nbytes / bandwidth + overhead
        return total

    # -- energy pricing -----------------------------------------------------
    def _energy(self, pipelines: list[PipelineEstimate]
                ) -> tuple[float, float]:
        server = self.server
        cpu = server.cpu
        idle_watts = server.idle_power_watts()
        full = 0.0
        attributed = 0.0
        cpu_active_extra = cpu.spec.peak_watts - cpu.spec.idle_watts
        for pipeline in pipelines:
            duration = pipeline.seconds
            degree = min(pipeline.parallelism, cpu.spec.cores)
            busy_fraction = degree / cpu.spec.cores
            grant_watts = (server.dram.spec.allocated_watts_per_gib
                           * pipeline.dram_grant_bytes / GIB)
            storage_extra = 0.0
            storage_active = 0.0
            if pipeline.io_seconds > 0:
                for array, nbytes, _n_random in pipeline.arrays:
                    share = nbytes / pipeline.io_bytes
                    for member in array.members:
                        if isinstance(member, HardDisk):
                            active = member.spec.active_watts
                            idle = member.spec.idle_watts
                        else:
                            active = member.spec.read_watts
                            idle = member.spec.idle_watts
                        storage_extra += (active - idle) * \
                            pipeline.io_seconds * share
                        storage_active += active * pipeline.io_seconds * share
            full += (idle_watts * duration
                     + cpu_active_extra * busy_fraction * pipeline.cpu_seconds
                     + storage_extra + grant_watts * duration)
            attributed += (cpu.active_power_per_unit_watts * degree
                           * pipeline.cpu_seconds
                           + storage_active + grant_watts * duration)
        return full, attributed

    # -- tree walk -----------------------------------------------------------
    def _walk(self, op: Operator,
              pipelines: list[PipelineEstimate]) -> _Estimate:
        handler = _HANDLERS.get(type(op))
        if handler is None:
            raise OptimizerError(f"cost model cannot price {op.describe()}")
        return handler(self, op, pipelines)

    def _current(self, pipelines: list[PipelineEstimate]) -> PipelineEstimate:
        return pipelines[-1]

    def _break(self, pipelines: list[PipelineEstimate]) -> None:
        pipelines.append(PipelineEstimate())

    # -- operator handlers -----------------------------------------------------
    def _scan(self, op: TableScan,
              pipelines: list[PipelineEstimate]) -> _Estimate:
        stats = self.statistics_for(op.table)
        params = self.params
        pipeline = self._current(pipelines)
        scan_bytes = op.table.scan_bytes(op.output_columns)
        if not op.shared_pass:
            pipeline.io_bytes += scan_bytes * self.scale
            pipeline.arrays.append(
                (op.table.placement, scan_bytes * self.scale, 0.0))
        plain = op.table.plain_bytes(op.output_columns)
        cycles = plain * params.cycles_per_scan_byte
        cycles += scan_bytes * op.table.decode_cycles_per_scan_byte(
            op.output_columns)
        cycles += stats.row_count * params.cycles_per_tuple_overhead
        if op.predicate is not None:
            cycles += stats.row_count * op.predicate.cycles()
        pipeline.cpu_cycles += cycles * self.scale
        selectivity = estimate_selectivity(op.predicate, stats)
        columns = {name: stat for name, stat in stats.columns.items()
                   if name in op.output_columns}
        return _Estimate(stats.row_count * selectivity, columns)

    def _filter(self, op: Filter,
                pipelines: list[PipelineEstimate]) -> _Estimate:
        child = self._walk(op.child, pipelines)
        self._current(pipelines).cpu_cycles += (
            child.rows * op.predicate.cycles() * self.scale)
        fake_stats = TableStatistics("_derived", int(child.rows) or 1,
                                     0, 0, columns=child.columns)
        selectivity = estimate_selectivity(op.predicate, fake_stats)
        return _Estimate(child.rows * selectivity, child.columns)

    def _project(self, op: Project,
                 pipelines: list[PipelineEstimate]) -> _Estimate:
        child = self._walk(op.child, pipelines)
        per_tuple = sum(e.cycles() for e in op.exprs)
        self._current(pipelines).cpu_cycles += (
            child.rows * per_tuple * self.scale)
        kept = {name: stat for name, stat in child.columns.items()
                if name in op.output_columns}
        return _Estimate(child.rows, kept)

    def _join_cardinality(self, left: _Estimate, right: _Estimate,
                          left_keys, right_keys) -> float:
        ndv = 1.0
        for lk, rk in zip(left_keys, right_keys):
            v_left = left.columns[lk].ndv if lk in left.columns else 0
            v_right = right.columns[rk].ndv if rk in right.columns else 0
            ndv = max(ndv, float(max(v_left, v_right)))
        return left.rows * right.rows / ndv

    def _hash_join(self, op: HashJoin,
                   pipelines: list[PipelineEstimate]) -> _Estimate:
        params = self.params
        build = self._walk(op.build, pipelines)
        pipeline = self._current(pipelines)
        pipeline.cpu_cycles += (build.rows * params.cycles_per_hash_build_tuple
                                * self.scale)
        self._break(pipelines)
        probe = self._walk(op.probe, pipelines)
        pipeline = self._current(pipelines)
        per_row = 8 * len(op.build.output_columns) + 48
        grant = (build.rows * per_row * params.hash_table_overhead_factor)
        pipeline.dram_grant_bytes += grant * self.scale
        out_rows = self._join_cardinality(build, probe,
                                          op.build_keys, op.probe_keys)
        pipeline.cpu_cycles += (
            probe.rows * params.cycles_per_hash_probe_tuple
            + out_rows * params.cycles_per_output_tuple) * self.scale
        return _Estimate(out_rows, {**build.columns, **probe.columns})

    def _nlj(self, op: BlockNestedLoopJoin,
             pipelines: list[PipelineEstimate]) -> _Estimate:
        params = self.params
        outer = self._walk(op.outer, pipelines)
        inner = self._walk(op.inner, pipelines)
        pipeline = self._current(pipelines)
        n_blocks = max(1.0, math.ceil(outer.rows / op.block_rows))
        inner_stats = self.statistics_for(op.inner.table)
        rescan_bytes = op.inner.table.scan_bytes(op.inner.output_columns) \
            * (n_blocks - 1)
        pipeline.io_bytes += rescan_bytes * self.scale
        if rescan_bytes:
            pipeline.arrays.append(
                (op.inner.table.placement, rescan_bytes * self.scale, 0.0))
        rescan_cpu = (
            op.inner.table.plain_bytes(op.inner.output_columns)
            * params.cycles_per_scan_byte
            + inner_stats.row_count * params.cycles_per_tuple_overhead
        ) * (n_blocks - 1)
        pipeline.cpu_cycles += rescan_cpu * self.scale
        pipeline.cpu_cycles += (outer.rows * inner.rows
                                * params.cycles_per_join_pair
                                * self.scale * self.scale)
        merged = {**outer.columns, **inner.columns}
        fake_stats = TableStatistics(
            "_pairs", max(1, int(outer.rows * inner.rows)), 0, 0,
            columns=merged)
        selectivity = self._join_predicate_selectivity(
            op.predicate, outer, inner, fake_stats)
        out_rows = outer.rows * inner.rows * selectivity
        pipeline.cpu_cycles += out_rows * params.cycles_per_output_tuple \
            * self.scale
        return _Estimate(out_rows, merged)

    def _join_predicate_selectivity(self, predicate, outer: _Estimate,
                                    inner: _Estimate, fake_stats) -> float:
        from repro.relational.expr import ColumnRef, Comparison
        if (isinstance(predicate, Comparison) and predicate.op == "="
                and isinstance(predicate.left, ColumnRef)
                and isinstance(predicate.right, ColumnRef)):
            names = (predicate.left.name, predicate.right.name)
            ndv = 1.0
            for name in names:
                for side in (outer, inner):
                    if name in side.columns:
                        ndv = max(ndv, float(side.columns[name].ndv))
            return 1.0 / ndv
        return estimate_selectivity(predicate, fake_stats)

    def _smj(self, op: SortMergeJoin,
             pipelines: list[PipelineEstimate]) -> _Estimate:
        params = self.params
        left = self._walk(op.left, pipelines)
        self._current(pipelines).cpu_cycles += self._sort_cycles(
            left.rows) * self.scale
        self._break(pipelines)
        right = self._walk(op.right, pipelines)
        self._current(pipelines).cpu_cycles += self._sort_cycles(
            right.rows) * self.scale
        self._break(pipelines)
        out_rows = self._join_cardinality(left, right,
                                          op.left_keys, op.right_keys)
        self._current(pipelines).cpu_cycles += (
            (left.rows + right.rows) * params.cycles_per_merge_tuple
            + out_rows * params.cycles_per_output_tuple) * self.scale
        return _Estimate(out_rows, {**left.columns, **right.columns})

    def _sort_cycles(self, rows: float) -> float:
        if rows < 2:
            return 0.0
        return rows * max(1.0, math.log2(rows)) \
            * self.params.cycles_per_sort_compare

    def _sort(self, op: Sort,
              pipelines: list[PipelineEstimate]) -> _Estimate:
        params = self.params
        child = self._walk(op.child, pipelines)
        pipeline = self._current(pipelines)
        data_bytes = child.rows * len(op.output_columns) * op.BYTES_PER_FIELD
        grant = op.memory_grant_bytes
        spills = (grant is not None and data_bytes > grant
                  and op.spill_placement is not None)
        if spills:
            assert grant is not None
            n_runs = max(2.0, math.ceil(data_bytes / grant))
            run_rows = max(1.0, child.rows / n_runs)
            pipeline.cpu_cycles += n_runs * self._sort_cycles(run_rows) \
                * self.scale
            spill = data_bytes * params.sort_run_overhead_factor * self.scale
            pipeline.io_bytes += spill
            pipeline.arrays.append((op.spill_placement, spill, 0.0))
            self._break(pipelines)
            pipeline = self._current(pipelines)
            pipeline.io_bytes += spill
            pipeline.arrays.append((op.spill_placement, spill, 0.0))
            passes = max(1.0, math.ceil(math.log(n_runs, 16))
                         if n_runs > 1 else 1.0)
            pipeline.cpu_cycles += (child.rows * params.cycles_per_merge_tuple
                                    * passes * self.scale)
        else:
            pipeline.cpu_cycles += self._sort_cycles(child.rows) * self.scale
            pipeline.dram_grant_bytes += data_bytes * self.scale
            self._break(pipelines)
            self._current(pipelines).cpu_cycles += (
                child.rows * params.cycles_per_output_tuple * self.scale)
        return _Estimate(child.rows, child.columns)

    def _group_count(self, child: _Estimate, group_by) -> float:
        if not group_by:
            return 1.0
        groups = 1.0
        for key in group_by:
            ndv = child.columns[key].ndv if key in child.columns else 10
            groups *= max(1, ndv)
        return min(child.rows, groups)

    def _agg_update_cycles(self, op, rows: float) -> float:
        expr_cycles = sum(s.expr.cycles() for s in op.aggregates
                          if s.expr is not None)
        return rows * (self.params.cycles_per_agg_update
                       * max(1, len(op.aggregates)) + expr_cycles)

    def _hash_agg(self, op: HashAggregate,
                  pipelines: list[PipelineEstimate]) -> _Estimate:
        child = self._walk(op.child, pipelines)
        pipeline = self._current(pipelines)
        pipeline.cpu_cycles += self._agg_update_cycles(op, child.rows) \
            * self.scale
        groups = self._group_count(child, op.group_by)
        pipeline.dram_grant_bytes += (
            groups * (8 * len(op.output_columns) + 64)) * self.scale
        self._break(pipelines)
        self._current(pipelines).cpu_cycles += (
            groups * self.params.cycles_per_output_tuple * self.scale)
        kept = {name: stat for name, stat in child.columns.items()
                if name in op.group_by}
        return _Estimate(groups, kept)

    def _sorted_agg(self, op: SortedAggregate,
                    pipelines: list[PipelineEstimate]) -> _Estimate:
        child = self._walk(op.child, pipelines)
        pipeline = self._current(pipelines)
        pipeline.cpu_cycles += self._agg_update_cycles(op, child.rows) \
            * self.scale
        groups = self._group_count(child, op.group_by)
        pipeline.cpu_cycles += groups * self.params.cycles_per_output_tuple \
            * self.scale
        kept = {name: stat for name, stat in child.columns.items()
                if name in op.group_by}
        return _Estimate(groups, kept)

    def _index_scan(self, op, pipelines: list[PipelineEstimate]
                    ) -> _Estimate:
        from repro.relational.operators.index import (
            CYCLES_PER_FETCHED_ROW,
            CYCLES_PER_TREE_LEVEL,
        )
        stats = self.statistics_for(op.table)
        col_stats = stats.column(op.index.column)
        fraction = 1.0
        if col_stats is not None and col_stats.histogram:
            high_f = (col_stats.range_selectivity("<=", op.high)
                      if op.high is not None else 1.0)
            low_f = (col_stats.range_selectivity("<", op.low)
                     if op.low is not None else 0.0)
            fraction = max(0.0, high_f - low_f)
        rows = stats.row_count * fraction
        pipeline = self._current(pipelines)
        leaf_bytes = op.index.range_leaf_bytes(op.low, op.high)
        pipeline.io_bytes += leaf_bytes * self.scale
        pipeline.arrays.append(
            (op.table.placement, leaf_bytes * self.scale, 0.0))
        fetch_bytes, random_requests = op.index.heap_fetch_plan(
            max(0, int(rows)))
        if fetch_bytes:
            pipeline.io_bytes += fetch_bytes * self.scale
            pipeline.arrays.append(
                (op.table.placement, fetch_bytes * self.scale,
                 random_requests * self.scale))
        pipeline.cpu_cycles += (
            rows * CYCLES_PER_FETCHED_ROW
            + op.index.tree.height * CYCLES_PER_TREE_LEVEL) * self.scale
        columns = {name: stat for name, stat in stats.columns.items()
                   if name in op.output_columns}
        return _Estimate(rows, columns)

    def _index_nlj(self, op, pipelines: list[PipelineEstimate]
                   ) -> _Estimate:
        from repro.relational.operators.index import (
            CYCLES_PER_FETCHED_ROW,
            CYCLES_PER_TREE_LEVEL,
        )
        params = self.params
        outer = self._walk(op.outer, pipelines)
        inner_stats = self.statistics_for(op.inner_table)
        inner_col = inner_stats.column(op.index.column)
        matches_per_probe = 1.0
        if inner_col is not None and inner_col.ndv > 0:
            matches_per_probe = inner_stats.row_count / inner_col.ndv
        out_rows = outer.rows * matches_per_probe
        pipeline = self._current(pipelines)
        probe_bytes = outer.rows * op.index.probe_io_bytes()
        fetch_bytes, random_fetches = op.index.heap_fetch_plan(
            max(0, int(out_rows)))
        pipeline.io_bytes += (probe_bytes + fetch_bytes) * self.scale
        pipeline.arrays.append(
            (op.inner_table.placement,
             (probe_bytes + fetch_bytes) * self.scale,
             (outer.rows + random_fetches) * self.scale))
        pipeline.cpu_cycles += (
            outer.rows * op.index.tree.height * CYCLES_PER_TREE_LEVEL
            + out_rows * CYCLES_PER_FETCHED_ROW
            + out_rows * params.cycles_per_output_tuple) * self.scale
        inner_columns = {
            name: stat for name, stat in inner_stats.columns.items()
            if name in op.inner_columns}
        return _Estimate(out_rows, {**outer.columns, **inner_columns})

    def _limit(self, op: Limit,
               pipelines: list[PipelineEstimate]) -> _Estimate:
        child = self._walk(op.child, pipelines)
        return _Estimate(min(child.rows, op.count), child.columns)

    def _exchange(self, op: Exchange,
                  pipelines: list[PipelineEstimate]) -> _Estimate:
        child = self._walk(op.child, pipelines)
        self._current(pipelines).parallelism = op.degree
        return child


from repro.relational.operators.index import (  # noqa: E402
    IndexNestedLoopJoin,
    IndexScan,
)

_HANDLERS = {
    IndexNestedLoopJoin: CostModel._index_nlj,
    IndexScan: CostModel._index_scan,
    TableScan: CostModel._scan,
    Filter: CostModel._filter,
    Project: CostModel._project,
    HashJoin: CostModel._hash_join,
    BlockNestedLoopJoin: CostModel._nlj,
    SortMergeJoin: CostModel._smj,
    Sort: CostModel._sort,
    HashAggregate: CostModel._hash_agg,
    SortedAggregate: CostModel._sorted_agg,
    Limit: CostModel._limit,
    Exchange: CostModel._exchange,
}
