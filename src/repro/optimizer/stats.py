"""Table statistics and selectivity estimation.

Statistics are computed from the actual stored data (``ANALYZE``-style):
row counts, per-column distinct counts, min/max, and equi-depth
histograms.  Selectivity estimation walks predicate expression trees
using the classic System-R rules with histogram refinement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.errors import OptimizerError
from repro.relational.expr import (
    Between,
    BoolOp,
    ColumnRef,
    Comparison,
    Expr,
    InList,
    Like,
    Literal,
)
from repro.storage.manager import Table

DEFAULT_SELECTIVITY = 1.0 / 3.0
EQUALITY_FALLBACK = 0.1


@dataclass
class ColumnStats:
    """Distribution summary for one column."""

    ndv: int
    min_value: Any = None
    max_value: Any = None
    null_fraction: float = 0.0
    #: equi-depth bucket upper bounds (len = bucket count)
    histogram: list[Any] = field(default_factory=list)

    def equality_selectivity(self) -> float:
        if self.ndv <= 0:
            return EQUALITY_FALLBACK
        return 1.0 / self.ndv

    def range_selectivity(self, op: str, value: Any) -> float:
        """Fraction of rows passing ``column <op> value``.

        Equi-depth buckets with linear interpolation inside the bucket
        containing ``value`` (for numeric/date columns; non-numeric
        columns fall back to whole-bucket granularity).
        """
        if not self.histogram:
            return DEFAULT_SELECTIVITY
        fraction = self._fraction_at_or_below(value)
        if op in ("<", "<="):
            return fraction
        if op in (">", ">="):
            return 1.0 - fraction
        raise OptimizerError(f"not a range operator: {op}")

    def _fraction_at_or_below(self, value: Any) -> float:
        n = len(self.histogram)
        if self.min_value is not None and value < self.min_value:
            return 0.0
        if value >= self.histogram[-1]:
            return 1.0
        whole = sum(1 for bound in self.histogram if bound <= value)
        # interpolate within the first bucket whose bound exceeds value
        lower = (self.histogram[whole - 1] if whole > 0
                 else self.min_value)
        upper = self.histogram[whole]
        try:
            span = upper - lower
            offset = value - lower
            within = (offset / span) if span else 1.0
            within = max(0.0, min(1.0, float(within)))
        except TypeError:  # non-arithmetic type (e.g. strings)
            within = 0.0
        return (whole + within) / n


@dataclass
class TableStatistics:
    """Physical and logical statistics for one table."""

    table_name: str
    row_count: int
    scan_bytes: int
    plain_bytes: int
    columns: dict[str, ColumnStats] = field(default_factory=dict)

    @property
    def average_row_bytes(self) -> float:
        if self.row_count == 0:
            return 0.0
        return self.plain_bytes / self.row_count

    def column(self, name: str) -> Optional[ColumnStats]:
        return self.columns.get(name)


def analyze_table(table: Table, histogram_buckets: int = 16,
                  sample_rows: int = 50_000) -> TableStatistics:
    """Compute statistics by reading the stored data."""
    if histogram_buckets < 1:
        raise OptimizerError("need at least one histogram bucket")
    names = table.schema.column_names()
    values_by_column: dict[str, list[Any]] = {n: [] for n in names}
    nulls: dict[str, int] = {n: 0 for n in names}
    n_rows = 0
    for row in table.iterate():
        n_rows += 1
        if n_rows > sample_rows:
            continue
        for name, value in zip(names, row):
            if value is None:
                nulls[name] += 1
            else:
                values_by_column[name].append(value)
    stats = TableStatistics(
        table_name=table.name,
        row_count=table.row_count,
        scan_bytes=table.scan_bytes(),
        plain_bytes=table.plain_bytes(),
    )
    sampled = min(n_rows, sample_rows)
    for name in names:
        values = values_by_column[name]
        if not values:
            stats.columns[name] = ColumnStats(
                ndv=0, null_fraction=1.0 if sampled else 0.0)
            continue
        ordered = sorted(values)
        buckets = min(histogram_buckets, len(ordered))
        bounds = [ordered[int((i + 1) * len(ordered) / buckets) - 1]
                  for i in range(buckets)]
        stats.columns[name] = ColumnStats(
            ndv=len(set(values)),
            min_value=ordered[0],
            max_value=ordered[-1],
            null_fraction=nulls[name] / sampled if sampled else 0.0,
            histogram=bounds,
        )
    return stats


def estimate_selectivity(predicate: Optional[Expr],
                         stats: TableStatistics) -> float:
    """Estimated fraction of rows passing ``predicate``."""
    if predicate is None:
        return 1.0
    return max(0.0, min(1.0, _selectivity(predicate, stats)))


def _column_and_literal(expr: Comparison) -> Optional[tuple[str, Any, str]]:
    """Decompose ``col <op> literal`` (either orientation)."""
    flip = {"<": ">", ">": "<", "<=": ">=", ">=": "<=", "=": "=",
            "!=": "!="}
    if isinstance(expr.left, ColumnRef) and isinstance(expr.right, Literal):
        return expr.left.name, expr.right.value, expr.op
    if isinstance(expr.right, ColumnRef) and isinstance(expr.left, Literal):
        return expr.right.name, expr.left.value, flip[expr.op]
    return None


def _selectivity(expr: Expr, stats: TableStatistics) -> float:
    if isinstance(expr, Literal):
        if expr.value is True:
            return 1.0
        if expr.value is False:
            return 0.0
        return DEFAULT_SELECTIVITY
    if isinstance(expr, Comparison):
        decomposed = _column_and_literal(expr)
        if decomposed is None:
            return DEFAULT_SELECTIVITY
        name, value, op = decomposed
        col_stats = stats.column(name)
        if col_stats is None:
            return DEFAULT_SELECTIVITY
        if op == "=":
            return col_stats.equality_selectivity()
        if op == "!=":
            return 1.0 - col_stats.equality_selectivity()
        return col_stats.range_selectivity(op, value)
    if isinstance(expr, Between):
        if isinstance(expr.value, ColumnRef) and \
                isinstance(expr.low, Literal) and isinstance(expr.high, Literal):
            col_stats = stats.column(expr.value.name)
            if col_stats is not None and col_stats.histogram:
                high = col_stats.range_selectivity("<=", expr.high.value)
                low = col_stats.range_selectivity("<", expr.low.value)
                return max(0.0, high - low)
        return DEFAULT_SELECTIVITY * DEFAULT_SELECTIVITY
    if isinstance(expr, InList):
        if isinstance(expr.value, ColumnRef):
            col_stats = stats.column(expr.value.name)
            if col_stats is not None and col_stats.ndv > 0:
                return min(1.0, len(expr.items) / col_stats.ndv)
        return DEFAULT_SELECTIVITY
    if isinstance(expr, Like):
        return DEFAULT_SELECTIVITY
    if isinstance(expr, BoolOp):
        if expr.op == "not":
            return 1.0 - _selectivity(expr.operands[0], stats)
        parts = [_selectivity(o, stats) for o in expr.operands]
        if expr.op == "and":
            out = 1.0
            for p in parts:
                out *= p
            return out
        # or: inclusion-exclusion, assuming independence
        out = 0.0
        for p in parts:
            out = out + p - out * p
        return out
    return DEFAULT_SELECTIVITY
