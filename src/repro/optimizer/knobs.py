"""System-wide configuration knobs (paper §4.1, approach a).

"Use existing system-wide knobs and internal query optimization
parameters to achieve the most energy-efficient configuration."  The
knob set below is what the A2 experiment sweeps: DVFS level, degree of
parallelism, operator memory grant, and compression choice.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Optional

from repro.errors import OptimizerError
from repro.relational.executor import ExecutionContext
from repro.relational.operators.base import CostParameters
from repro.units import MIB

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.server import Server
    from repro.sim.engine import Simulation


@dataclass(frozen=True)
class SystemKnobs:
    """One configuration point of the system."""

    dvfs_fraction: float = 1.0
    parallelism: int = 1
    memory_grant_bytes: Optional[float] = None
    #: per-column codec names for newly-created column tables
    compression: dict[str, str] = field(default_factory=dict)
    chunk_bytes: float = 4 * MIB
    prefetch_depth: int = 2

    def __post_init__(self) -> None:
        if not 0 < self.dvfs_fraction <= 1.0:
            raise OptimizerError("DVFS fraction must be in (0, 1]")
        if self.parallelism < 1:
            raise OptimizerError("parallelism must be >= 1")
        if self.memory_grant_bytes is not None and self.memory_grant_bytes < 0:
            raise OptimizerError("memory grant cannot be negative")

    def with_(self, **changes) -> "SystemKnobs":
        """A copy with some fields changed (sweep helper)."""
        return replace(self, **changes)

    def apply(self, server: "Server") -> None:
        """Push hardware-level knobs onto a server (CPU must be idle)."""
        if self.dvfs_fraction not in server.cpu.spec.dvfs_fractions:
            raise OptimizerError(
                f"server offers DVFS fractions "
                f"{server.cpu.spec.dvfs_fractions}, not {self.dvfs_fraction}")
        server.cpu.set_dvfs(self.dvfs_fraction)

    def execution_context(self, sim: "Simulation", server: "Server",
                          scale: float = 1.0,
                          params: Optional[CostParameters] = None
                          ) -> ExecutionContext:
        """Build an executor context reflecting these knobs."""
        return ExecutionContext(
            sim=sim, server=server,
            params=params or CostParameters(),
            scale=scale,
            chunk_bytes=self.chunk_bytes,
            prefetch_depth=self.prefetch_depth,
        )
