"""Physical design advisor (paper §3.1 and §5.1).

Two decisions the paper shows matter for energy:

* **Layout and compression** — "techniques that reduce disk bandwidth
  requirements, such as column-oriented storage and compression, will
  need to be re-evaluated for their ability to reduce overall energy
  use" (§5.1).  :meth:`DesignAdvisor.choose_codecs` prices each codec's
  bandwidth savings against its decompression CPU energy on the target
  hardware — the Figure 2 arithmetic run in reverse.
* **Device count / striping width** — Figure 1's knob.
  :meth:`DesignAdvisor.choose_width` sweeps an evaluation callback and
  picks the most energy-efficient width, optionally under a minimum
  performance constraint (§5.3's TCO discussion).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.errors import OptimizerError
from repro.relational.types import DataType
from repro.storage.compression import codec_by_name
from repro.optimizer.objective import Objective


@dataclass
class CodecChoice:
    """Advice for one column."""

    column: str
    codec: str
    compressed_bytes: int
    plain_bytes: int
    scan_energy_joules: float

    @property
    def ratio(self) -> float:
        if self.plain_bytes == 0:
            return 1.0
        return self.compressed_bytes / self.plain_bytes


@dataclass
class DesignChoice:
    """The advisor's overall recommendation."""

    codecs: dict[str, str] = field(default_factory=dict)
    width: Optional[int] = None
    details: dict[str, Any] = field(default_factory=dict)


@dataclass
class SweepPoint:
    """One evaluated configuration in a width sweep."""

    width: int
    seconds: float
    energy_joules: float

    @property
    def performance(self) -> float:
        return 1.0 / self.seconds if self.seconds > 0 else 0.0

    @property
    def efficiency(self) -> float:
        return 1.0 / self.energy_joules if self.energy_joules > 0 else 0.0


class DesignAdvisor:
    """Recommends physical designs under an energy objective."""

    def __init__(self, cpu_joules_per_cycle: float,
                 io_joules_per_byte: float,
                 scan_cycles_per_byte: float = 3.2,
                 cpu_seconds_per_cycle: Optional[float] = None,
                 io_seconds_per_byte: Optional[float] = None) -> None:
        if cpu_joules_per_cycle < 0 or io_joules_per_byte < 0:
            raise OptimizerError("energy prices cannot be negative")
        self.cpu_joules_per_cycle = cpu_joules_per_cycle
        self.io_joules_per_byte = io_joules_per_byte
        self.scan_cycles_per_byte = scan_cycles_per_byte
        # time prices default to the joule prices, so callers that only
        # care about energy ordering need not supply them
        self.cpu_seconds_per_cycle = (cpu_seconds_per_cycle
                                      if cpu_seconds_per_cycle is not None
                                      else cpu_joules_per_cycle)
        self.io_seconds_per_byte = (io_seconds_per_byte
                                    if io_seconds_per_byte is not None
                                    else io_joules_per_byte)

    # -- construction helpers ----------------------------------------------
    @classmethod
    def for_server(cls, server,
                   scan_cycles_per_byte: float = 3.2) -> "DesignAdvisor":
        """Derive energy prices from a server's device constants."""
        cpu = server.cpu
        joules_per_cycle = (cpu.active_power_per_unit_watts
                            / cpu.effective_frequency_hz)
        active_watts = 0.0
        bandwidth = 0.0
        for device in server.storage:
            spec = device.spec
            watts = getattr(spec, "active_watts", None)
            if watts is None:
                watts = spec.read_watts
            active_watts += watts
            bw = getattr(spec, "bandwidth_bytes_per_s", None)
            if bw is None:
                bw = spec.read_bandwidth_bytes_per_s
            bandwidth += bw
        if bandwidth <= 0:
            raise OptimizerError("server has no readable storage")
        return cls(cpu_joules_per_cycle=joules_per_cycle,
                   io_joules_per_byte=active_watts / bandwidth,
                   scan_cycles_per_byte=scan_cycles_per_byte,
                   cpu_seconds_per_cycle=1.0 / cpu.effective_frequency_hz,
                   io_seconds_per_byte=1.0 / bandwidth)

    # -- codec advice -----------------------------------------------------
    def scan_energy(self, plain_bytes: float, compressed_bytes: float,
                    decode_cycles_per_byte: float) -> float:
        """Energy of scanning one column once (the Figure 2 arithmetic)."""
        io = compressed_bytes * self.io_joules_per_byte
        cpu = (plain_bytes * self.scan_cycles_per_byte
               + compressed_bytes * decode_cycles_per_byte) \
            * self.cpu_joules_per_cycle
        return io + cpu

    def choose_codec(self, column: str, values: Sequence[Any],
                     dtype: DataType,
                     candidates: Sequence[str] = ("none", "rle",
                                                  "dictionary", "delta",
                                                  "lzlite"),
                     objective: Objective = Objective.ENERGY) -> CodecChoice:
        """Pick the codec minimizing scan energy (or time) for a column.

        Under ``Objective.TIME`` the choice minimizes scan seconds
        instead, which — as Figure 2 shows — can pick a different codec.
        """
        if not values:
            return CodecChoice(column, "none", 0, 0, 0.0)
        sample = list(values)
        plain = len(codec_by_name("none").encode(sample, dtype))
        best: Optional[CodecChoice] = None
        best_key = None
        for name in candidates:
            codec = codec_by_name(name)
            if not codec.supports(dtype):
                continue
            try:
                compressed = len(codec.encode(sample, dtype))
            except Exception:  # codec can't encode these values (NULLs)
                continue
            energy = self.scan_energy(plain, compressed,
                                      codec.decode_cycles_per_byte)
            if objective is Objective.TIME:
                # pipelined scan: time ~ max(io time, cpu time)
                io_s = compressed * self.io_seconds_per_byte
                cpu_s = (plain * self.scan_cycles_per_byte
                         + compressed * codec.decode_cycles_per_byte) \
                    * self.cpu_seconds_per_cycle
                key = max(io_s, cpu_s)
            else:
                key = energy
            if best_key is None or key < best_key:
                best_key = key
                best = CodecChoice(column, name, compressed, plain, energy)
        assert best is not None
        return best

    def choose_codecs(self, table, sample_rows: int = 4000,
                      objective: Objective = Objective.ENERGY
                      ) -> dict[str, str]:
        """Per-column codec advice for a whole table."""
        names = table.schema.column_names()
        samples: dict[str, list[Any]] = {n: [] for n in names}
        for i, row in enumerate(table.iterate()):
            if i >= sample_rows:
                break
            for name, value in zip(names, row):
                if value is not None:
                    samples[name].append(value)
        out = {}
        for name in names:
            dtype = table.schema.column(name).dtype
            out[name] = self.choose_codec(name, samples[name], dtype,
                                          objective=objective).codec
        return out

    # -- width (disk count) advice -----------------------------------------
    def choose_width(self, evaluate: Callable[[int], tuple[float, float]],
                     candidates: Sequence[int],
                     min_performance: Optional[float] = None
                     ) -> tuple[int, list[SweepPoint]]:
        """Sweep widths and pick the most energy-efficient one.

        ``evaluate(width)`` returns ``(seconds, joules)`` for the workload
        at that width.  With ``min_performance`` (1/seconds), widths below
        the floor are excluded — if none qualify, the fastest width wins
        (the §5.3 "pay for more hardware" branch is the caller's next
        move).
        """
        if not candidates:
            raise OptimizerError("no candidate widths")
        points = []
        for width in candidates:
            seconds, joules = evaluate(width)
            if seconds <= 0 or joules <= 0:
                raise OptimizerError(
                    f"evaluation at width {width} returned non-positive "
                    "time or energy")
            points.append(SweepPoint(width, seconds, joules))
        eligible = points
        if min_performance is not None:
            eligible = [p for p in points if p.performance >= min_performance]
            if not eligible:
                fastest = max(points, key=lambda p: p.performance)
                return fastest.width, points
        best = max(eligible, key=lambda p: p.efficiency)
        return best.width, points
