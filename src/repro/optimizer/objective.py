"""Optimization objectives.

"Optimizing for performance is different from optimizing for energy
efficiency" (§3.2).  The planner minimizes one of these scores:

* ``TIME`` — classic response-time optimization;
* ``ENERGY`` — minimize Joules (whole-system accounting);
* ``ENERGY_ATTRIBUTED`` — minimize busy-time Joules (Figure 2 style);
* ``EDP`` — energy-delay product, the usual compromise metric.

:class:`WeightedObjective` blends normalized time and energy for DBAs who
want a dial rather than a switch.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import OptimizerError
from repro.optimizer.cost import PlanCost


class Objective(enum.Enum):
    """What the planner minimizes."""

    TIME = "time"
    ENERGY = "energy"
    ENERGY_ATTRIBUTED = "energy-attributed"
    EDP = "edp"


def score(cost: PlanCost, objective: Objective) -> float:
    """Scalar score of a plan under an objective (lower is better)."""
    if objective is Objective.TIME:
        return cost.seconds
    if objective is Objective.ENERGY:
        return cost.energy_full_joules
    if objective is Objective.ENERGY_ATTRIBUTED:
        return cost.energy_attributed_joules
    if objective is Objective.EDP:
        return cost.energy_delay_product()
    raise OptimizerError(f"unknown objective {objective!r}")


@dataclass(frozen=True)
class WeightedObjective:
    """``alpha * time + (1 - alpha) * energy``, both normalized.

    ``time_scale`` and ``energy_scale`` set the normalization (e.g. an
    SLA bound and an energy budget); alpha=1 is pure performance,
    alpha=0 pure energy.
    """

    alpha: float
    time_scale_seconds: float = 1.0
    energy_scale_joules: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.alpha <= 1.0:
            raise OptimizerError("alpha must be in [0, 1]")
        if self.time_scale_seconds <= 0 or self.energy_scale_joules <= 0:
            raise OptimizerError("normalization scales must be positive")

    def score(self, cost: PlanCost) -> float:
        return (self.alpha * cost.seconds / self.time_scale_seconds
                + (1.0 - self.alpha) * cost.energy_full_joules
                / self.energy_scale_joules)
