"""repro.telemetry: energy-attribution telemetry for simulated runs.

The paper's argument rests on knowing *where the Joules go* — "the
disk subsystem accounts for more than half of total power" (§3.1) —
so this package turns the engine's always-on power step functions into
an attribution layer:

* :func:`capture` installs a process-global
  :class:`TelemetryCollector`; while active, every
  :class:`~repro.hardware.meter.EnergyMeter` self-registers, the
  executor opens :class:`EnergySpan` phases around queries and
  pipelines, and storage hooks (buffer pool, WAL, prefetcher) bump
  counters;
* :meth:`TelemetryCollector.finalize` freezes a
  :class:`TelemetryTrace` — a span tree with per-device metered and
  busy-time Joules, per-device power timelines, and the counters —
  that serializes losslessly (``to_dict``/``from_dict``), so traces
  ride through the runner's process pool, the content-addressed cache,
  and ``RunResult`` JSON;
* exporters render a trace as JSON, tidy CSV (both invertible), or a
  terminal energy flamegraph (``python -m repro.runner trace fig2``).

Telemetry is **off by default**: with no collector installed every
hook is one global read, keeping the untraced engine at full speed
(guarded by ``benchmarks/test_telemetry_overhead.py``).
"""

from repro.telemetry.collector import (
    DEFAULT_TIMELINE_SAMPLES,
    TelemetryCollector,
    capture,
)
from repro.telemetry.context import current_collector
from repro.telemetry.export import (
    counter_rows,
    device_rows,
    render_flamegraph,
    trace_from_csv,
    trace_from_json,
    trace_to_csv,
    trace_to_json,
)
from repro.telemetry.sink import TelemetrySink, tee
from repro.telemetry.spans import EnergySpan, SpanStack
from repro.telemetry.trace import DeviceTimeline, SpanNode, TelemetryTrace

__all__ = [
    "DEFAULT_TIMELINE_SAMPLES",
    "DeviceTimeline",
    "EnergySpan",
    "SpanNode",
    "SpanStack",
    "TelemetryCollector",
    "TelemetrySink",
    "TelemetryTrace",
    "capture",
    "counter_rows",
    "current_collector",
    "device_rows",
    "render_flamegraph",
    "tee",
    "trace_from_csv",
    "trace_from_json",
    "trace_to_csv",
    "trace_to_json",
]
