"""The telemetry collector: live capture of spans, meters, counters.

One :class:`TelemetryCollector` is installed process-wide for the
duration of a capture (see :func:`capture`).  While installed:

* every :class:`~repro.hardware.meter.EnergyMeter` constructed
  registers itself, which is how the collector discovers the run's
  devices without the point function passing anything around;
* the executor (and any other instrumented code) opens
  :class:`~repro.telemetry.spans.EnergySpan` phases via :meth:`span`;
* storage hooks bump :meth:`count` counters (buffer hits, WAL flushes,
  prefetch bursts).

Capture is cheap by construction: opening/closing a span snapshots each
device's cumulative busy-seconds (a dict copy), and *all* energy
integration is deferred to :meth:`finalize`, which replays the spans
against the power step functions the devices were recording anyway.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, Optional

from repro.telemetry.context import current_collector, install, uninstall
from repro.telemetry.spans import EnergySpan, SpanStack
from repro.telemetry.trace import DeviceTimeline, SpanNode, TelemetryTrace

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.device import Device
    from repro.hardware.meter import EnergyMeter
    from repro.sim.engine import Simulation
    from repro.sim.tracing import TimeSeries

#: timeline samples kept per device in the finalized trace; longer
#: power series are downsampled evenly (energy totals stay exact)
DEFAULT_TIMELINE_SAMPLES = 1024


def _integrate_clipped(series: "TimeSeries", t0: float, t1: float) -> float:
    """Integrate a power series over ``[t0, t1]`` clipped to its domain."""
    times = series.times
    if not times or t1 <= times[0] or t1 <= t0:
        return 0.0
    return series.integrate(max(t0, times[0]), t1)


def _downsample(times: list[float], values: list[float],
                limit: int) -> tuple[list[float], list[float]]:
    """Keep at most ``limit`` evenly-spaced samples (first + last
    always survive, so the plotted envelope keeps its endpoints)."""
    n = len(times)
    if n <= limit:
        return list(times), list(values)
    step = (n - 1) / (limit - 1)
    idx = sorted({round(i * step) for i in range(limit)} | {0, n - 1})
    return [times[i] for i in idx], [values[i] for i in idx]


class TelemetryCollector:
    """Accumulates spans, meters, and counters for one capture."""

    def __init__(self,
                 timeline_samples: int = DEFAULT_TIMELINE_SAMPLES) -> None:
        self.timeline_samples = timeline_samples
        self.stack = SpanStack()
        self.counters: dict[str, float] = {}
        self._meters: list["EnergyMeter"] = []

    # -- discovery ---------------------------------------------------

    def register_meter(self, meter: "EnergyMeter") -> None:
        """Called by :class:`EnergyMeter.__init__` while installed."""
        if meter not in self._meters:
            self._meters.append(meter)

    def devices(self) -> list["Device"]:
        """Every device attached to any registered meter, deduplicated
        by name (first registration wins), in name order."""
        seen: dict[str, "Device"] = {}
        for meter in self._meters:
            for device in meter.devices():
                seen.setdefault(device.name, device)
        return [seen[name] for name in sorted(seen)]

    # -- spans -------------------------------------------------------

    def busy_snapshot(self) -> dict[str, float]:
        """Cumulative busy unit-seconds per device, right now."""
        return {d.name: d.busy_seconds() for d in self.devices()}

    @contextmanager
    def span(self, sim: "Simulation", name: str,
             parent: Optional[EnergySpan] = None,
             root: bool = False) -> Iterator[EnergySpan]:
        """Open an energy span for the ``with`` block's sim-time extent.

        Pass ``parent`` explicitly when the block is a generator that
        other simulation processes can interleave with — it pins the
        span into the right tree regardless of the open-span stack.
        ``root=True`` starts a new tree instead (a concurrent process's
        top-level phase must not nest under its neighbours').
        """
        span = self.stack.open(name, sim.now, self.busy_snapshot(),
                               parent=parent, root=root)
        try:
            yield span
        finally:
            self.stack.close(span, sim.now, self.busy_snapshot())

    # -- counters ----------------------------------------------------

    def count(self, name: str, amount: float = 1.0) -> None:
        """Increment a named counter (buffer hits, WAL flushes, ...)."""
        self.counters[name] = self.counters.get(name, 0.0) + amount

    # -- finalize ----------------------------------------------------

    def finalize(self) -> TelemetryTrace:
        """Freeze the capture into a serializable trace.

        Safe to call only once everything of interest has simulated;
        open spans are force-closed at the current sim time.
        """
        devices = self.devices()
        if devices:
            end = max(d.sim.now for d in devices)
            start = min(d.power_series.times[0] if len(d.power_series)
                        else 0.0 for d in devices)
        else:
            start = end = 0.0
        self.stack.close_all(end, self.busy_snapshot())

        timelines = []
        for dev in devices:
            series = dev.power_series
            times, watts = _downsample(series.times, series.values,
                                       self.timeline_samples)
            per_unit = getattr(dev, "active_power_per_unit_watts", None)
            busy = dev.busy_seconds()
            timelines.append(DeviceTimeline(
                name=dev.name,
                times=times,
                watts=watts,
                energy_joules=_integrate_clipped(series, start, end),
                active_energy_joules=(busy * per_unit
                                      if per_unit is not None else 0.0),
                busy_seconds=busy,
                n_raw_samples=len(series),
            ))

        nodes = [self._span_to_node(root, devices)
                 for root in self.stack.roots]
        return TelemetryTrace(
            started_at=start,
            ended_at=end,
            devices=timelines,
            spans=nodes,
            counters=dict(self.counters),
        )

    def _span_to_node(self, span: EnergySpan,
                      devices: list["Device"]) -> SpanNode:
        device_joules = {}
        active_joules = {}
        for dev in devices:
            device_joules[dev.name] = _integrate_clipped(
                dev.power_series, span.started_at, span.ended_at)
            per_unit = getattr(dev, "active_power_per_unit_watts", None)
            if per_unit is not None:
                active_joules[dev.name] = (span.busy_delta(dev.name)
                                           * per_unit)
        return SpanNode(
            name=span.name,
            started_at=span.started_at,
            ended_at=span.ended_at,
            device_joules=device_joules,
            active_joules=active_joules,
            children=[self._span_to_node(c, devices)
                      for c in span.children],
        )


@contextmanager
def capture(timeline_samples: int = DEFAULT_TIMELINE_SAMPLES
            ) -> Iterator[TelemetryCollector]:
    """Enable telemetry for the ``with`` block.

    Usage::

        from repro.telemetry import capture

        with capture() as col:
            report = run_scan(compressed=True)
        trace = col.finalize()

    The collector is installed process-globally, so everything the
    block constructs (simulations, servers, executors) feeds it without
    explicit plumbing.  Captures do not nest.
    """
    collector = TelemetryCollector(timeline_samples=timeline_samples)
    install(collector)
    try:
        yield collector
    finally:
        uninstall(collector)


__all__ = [
    "DEFAULT_TIMELINE_SAMPLES",
    "TelemetryCollector",
    "capture",
    "current_collector",
]
