"""The process-global telemetry switch.

Telemetry is *off* by default: :func:`current_collector` returns
``None`` and every hook in the engine (executor spans, meter
registration, storage counters) reduces to one module-global read plus
one ``is None`` test — cheap enough to leave in hot paths permanently
(the overhead guard in ``benchmarks/test_telemetry_overhead.py`` holds
the *enabled* cost under 5 %; disabled it is unmeasurable).

This module deliberately imports nothing from the rest of the package,
so any engine module can hook into it without creating import cycles.
Worker processes each carry their own global, which is exactly the
isolation the runner's process pool needs: a traced point captures in
its own worker and ships the finished trace back as plain dicts.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry.collector import TelemetryCollector

_collector: Optional["TelemetryCollector"] = None


def current_collector() -> Optional["TelemetryCollector"]:
    """The active collector, or ``None`` when telemetry is off."""
    return _collector


def install(collector: "TelemetryCollector") -> None:
    """Make ``collector`` the process-wide active collector.

    Nesting is refused: a capture inside a capture almost always means
    a missing :func:`uninstall` (e.g. a leaked context manager), and
    silently reparenting spans would corrupt both traces.
    """
    global _collector
    if _collector is not None:
        from repro.errors import ReproError
        raise ReproError("a telemetry collector is already installed; "
                         "captures do not nest")
    _collector = collector


def uninstall(collector: "TelemetryCollector") -> None:
    """Deactivate ``collector`` (no-op if it is not the active one)."""
    global _collector
    if _collector is collector:
        _collector = None
