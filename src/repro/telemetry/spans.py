"""Energy spans: named sim-time intervals that energy is attributed to.

An :class:`EnergySpan` marks a phase of a run — a query, a pipeline, a
flush — by its ``[started_at, ended_at]`` interval on the simulation
clock, plus a snapshot of every device's cumulative busy-seconds at
both endpoints.  Attribution happens later (in
:meth:`~repro.telemetry.collector.TelemetryCollector.finalize`): the
interval is integrated against each device's power step function for
*metered* Joules, and the busy-second deltas are priced at each
device's active power for *busy-time* Joules (the paper's Figure 2
convention).  Recording only endpoints keeps the in-run overhead to two
dict snapshots per span.

:class:`SpanStack` maintains the open-span stack and the resulting
forest.  Closing is tolerant of non-LIFO order (concurrent simulation
processes may interleave spans); an explicit ``parent`` pins a span
into the right tree regardless of what else is open.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.errors import ReproError


@dataclass
class EnergySpan:
    """One named phase: a sim-time interval with busy-time snapshots."""

    name: str
    started_at: float
    busy_at_start: dict[str, float] = field(default_factory=dict)
    ended_at: Optional[float] = None
    busy_at_end: dict[str, float] = field(default_factory=dict)
    parent: Optional["EnergySpan"] = None
    children: list["EnergySpan"] = field(default_factory=list)

    @property
    def closed(self) -> bool:
        return self.ended_at is not None

    @property
    def duration(self) -> float:
        if self.ended_at is None:
            raise ReproError(f"span {self.name!r} is still open")
        return self.ended_at - self.started_at

    def busy_delta(self, device: str) -> float:
        """Busy unit-seconds the device accumulated inside this span."""
        if self.ended_at is None:
            raise ReproError(f"span {self.name!r} is still open")
        return (self.busy_at_end.get(device, 0.0)
                - self.busy_at_start.get(device, 0.0))

    def path(self) -> str:
        """Slash-joined names from the root down to this span."""
        parts = [self.name]
        node = self.parent
        while node is not None:
            parts.append(node.name)
            node = node.parent
        return "/".join(reversed(parts))

    def walk(self, depth: int = 0) -> Iterator[tuple[int, "EnergySpan"]]:
        """Pre-order traversal as ``(depth, span)`` pairs."""
        yield depth, self
        for child in self.children:
            yield from child.walk(depth + 1)

    def __repr__(self) -> str:
        end = f"{self.ended_at:.6g}" if self.ended_at is not None else "open"
        return (f"<EnergySpan {self.name!r} [{self.started_at:.6g}, {end}] "
                f"{len(self.children)} child(ren)>")


class SpanStack:
    """The open-span stack plus the closed-span forest it produces."""

    def __init__(self) -> None:
        self.roots: list[EnergySpan] = []
        self._open: list[EnergySpan] = []

    @property
    def current(self) -> Optional[EnergySpan]:
        """The innermost open span (default parent for new spans)."""
        return self._open[-1] if self._open else None

    def open(self, name: str, now: float, busy: dict[str, float],
             parent: Optional[EnergySpan] = None,
             root: bool = False) -> EnergySpan:
        """Open a span at ``now``; attach it under ``parent`` (or the
        innermost open span, or as a new root).

        ``root=True`` refuses the default parent: whatever span happens
        to be open belongs to some *other* concurrently simulating
        process, and this span must start its own tree.
        """
        if parent is None and not root:
            parent = self.current
        span = EnergySpan(name=name, started_at=now,
                          busy_at_start=dict(busy), parent=parent)
        if parent is None:
            self.roots.append(span)
        else:
            if parent.closed:
                raise ReproError(
                    f"cannot open span {name!r} under closed span "
                    f"{parent.name!r}")
            parent.children.append(span)
        self._open.append(span)
        return span

    def close(self, span: EnergySpan, now: float,
              busy: dict[str, float]) -> None:
        """Close ``span`` at ``now``.

        The span need not be the innermost open one: interleaved
        simulation processes close spans out of LIFO order, and that is
        fine — each span's interval is its own.
        """
        if span.closed:
            raise ReproError(f"span {span.name!r} closed twice")
        if now < span.started_at:
            raise ReproError(
                f"span {span.name!r} would close before it opened")
        span.ended_at = now
        span.busy_at_end = dict(busy)
        try:
            self._open.remove(span)
        except ValueError:
            raise ReproError(
                f"span {span.name!r} is not open on this stack") from None

    def close_all(self, now: float, busy: dict[str, float]) -> None:
        """Force-close any spans still open (end-of-capture cleanup)."""
        while self._open:
            self.close(self._open[-1], now, busy)
