"""The serializable telemetry capture: span tree + device timelines.

A :class:`TelemetryTrace` is what one traced run produces, frozen into
plain JSON-safe data: a forest of :class:`SpanNode` (each carrying its
per-device metered and busy-time Joules), one :class:`DeviceTimeline`
per metered device (the power step function plus energy totals), and
the counter map the storage hooks incremented.  It speaks the repo's
report protocol — ``to_dict`` / ``from_dict`` invert each other exactly
— so traces ride inside cached point payloads, cross the process-pool
boundary, and appear verbatim in ``RunResult`` JSON.

Two accountings appear side by side, matching the paper:

* ``device_joules`` / ``energy_joules`` — *metered*: the integral of the
  device's power step function over the span's interval (what a wall
  meter attributes to the phase);
* ``active_joules`` / ``active_energy_joules`` — *busy-time*: busy
  unit-seconds inside the span priced at the device's active power
  (Figure 2's "assuming that an idle CPU does not consume any power").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from repro.errors import ReproError


@dataclass
class SpanNode:
    """One finalized span with per-device energy attribution."""

    name: str
    started_at: float
    ended_at: float
    device_joules: dict[str, float] = field(default_factory=dict)
    active_joules: dict[str, float] = field(default_factory=dict)
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return self.ended_at - self.started_at

    @property
    def total_joules(self) -> float:
        """Metered energy over this span's interval, all devices."""
        return sum(self.device_joules.values())

    @property
    def active_total_joules(self) -> float:
        """Busy-time energy attributed to this span, all devices."""
        return sum(self.active_joules.values())

    def self_joules(self) -> float:
        """Metered energy not covered by any child span's interval."""
        return self.total_joules - sum(c.total_joules for c in self.children)

    def walk(self, depth: int = 0) -> Iterator[tuple[int, "SpanNode"]]:
        """Pre-order traversal as ``(depth, node)`` pairs."""
        yield depth, self
        for child in self.children:
            yield from child.walk(depth + 1)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "started_at": self.started_at,
            "ended_at": self.ended_at,
            "device_joules": {k: v for k, v
                              in sorted(self.device_joules.items())},
            "active_joules": {k: v for k, v
                              in sorted(self.active_joules.items())},
            "children": [c.to_dict() for c in self.children],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SpanNode":
        return cls(
            name=data["name"],
            started_at=data["started_at"],
            ended_at=data["ended_at"],
            device_joules=dict(data.get("device_joules", {})),
            active_joules=dict(data.get("active_joules", {})),
            children=[cls.from_dict(c) for c in data.get("children", [])],
        )


@dataclass
class DeviceTimeline:
    """One device's power timeline and energy totals over the capture.

    ``times``/``watts`` are the device's power step function (possibly
    downsampled — ``n_raw_samples`` preserves the original count); the
    energy totals are always computed from the *full* series, so
    downsampling only coarsens the plot, never the Joules.
    """

    name: str
    times: list[float] = field(default_factory=list)
    watts: list[float] = field(default_factory=list)
    energy_joules: float = 0.0
    active_energy_joules: float = 0.0
    busy_seconds: float = 0.0
    n_raw_samples: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "times": list(self.times),
            "watts": list(self.watts),
            "energy_joules": self.energy_joules,
            "active_energy_joules": self.active_energy_joules,
            "busy_seconds": self.busy_seconds,
            "n_raw_samples": self.n_raw_samples,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DeviceTimeline":
        return cls(
            name=data["name"],
            times=list(data.get("times", [])),
            watts=list(data.get("watts", [])),
            energy_joules=data.get("energy_joules", 0.0),
            active_energy_joules=data.get("active_energy_joules", 0.0),
            busy_seconds=data.get("busy_seconds", 0.0),
            n_raw_samples=data.get("n_raw_samples", 0),
        )


@dataclass
class TelemetryTrace:
    """Everything one traced run captured."""

    started_at: float = 0.0
    ended_at: float = 0.0
    devices: list[DeviceTimeline] = field(default_factory=list)
    spans: list[SpanNode] = field(default_factory=list)
    counters: dict[str, float] = field(default_factory=dict)

    # -- summaries ---------------------------------------------------

    @property
    def duration(self) -> float:
        return self.ended_at - self.started_at

    def device(self, name: str) -> DeviceTimeline:
        for dev in self.devices:
            if dev.name == name:
                return dev
        raise ReproError(f"trace has no device {name!r}")

    def device_totals(self) -> dict[str, float]:
        """Metered Joules per device over the whole capture."""
        return {d.name: d.energy_joules for d in self.devices}

    def active_totals(self) -> dict[str, float]:
        """Busy-time Joules per device over the whole capture."""
        return {d.name: d.active_energy_joules for d in self.devices}

    @property
    def total_joules(self) -> float:
        return sum(d.energy_joules for d in self.devices)

    @property
    def active_total_joules(self) -> float:
        return sum(d.active_energy_joules for d in self.devices)

    def attributed_joules(self) -> float:
        """Metered energy covered by the root spans' intervals."""
        return sum(s.total_joules for s in self.spans)

    def unattributed_joules(self) -> float:
        """Capture energy outside every root span (setup, idle tails).

        Conservation: ``attributed + unattributed == total`` whenever
        root spans do not overlap in time (the engine's spans never do
        within one query; concurrent queries overlap by design and then
        attribution intentionally double-counts the shared interval).
        """
        return self.total_joules - self.attributed_joules()

    def all_spans(self) -> Iterator[tuple[int, SpanNode]]:
        """Pre-order traversal of every span in every tree."""
        for root in self.spans:
            yield from root.walk()

    # -- serialization -----------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "started_at": self.started_at,
            "ended_at": self.ended_at,
            "devices": [d.to_dict() for d in self.devices],
            "spans": [s.to_dict() for s in self.spans],
            "counters": {k: v for k, v in sorted(self.counters.items())},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TelemetryTrace":
        return cls(
            started_at=data.get("started_at", 0.0),
            ended_at=data.get("ended_at", 0.0),
            devices=[DeviceTimeline.from_dict(d)
                     for d in data.get("devices", [])],
            spans=[SpanNode.from_dict(s) for s in data.get("spans", [])],
            counters=dict(data.get("counters", {})),
        )
