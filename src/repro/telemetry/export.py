"""Trace exporters: JSON, CSV, and the terminal energy flamegraph.

JSON is the canonical interchange form (exactly
``TelemetryTrace.to_dict()``); the CSV form is a tidy, typed-row table
that round-trips losslessly through :func:`trace_from_csv` (Python's
``str(float)`` is shortest-repr, so every value survives the text trip
bit-exactly).  The flamegraph is a plain-ASCII rendering for terminals:
one bar per span, width proportional to the span's share of the
capture's metered energy, indented by tree depth.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Optional

from repro.errors import ReproError
from repro.telemetry.trace import DeviceTimeline, SpanNode, TelemetryTrace

# -- JSON ------------------------------------------------------------


def trace_to_json(trace: TelemetryTrace, indent: Optional[int] = None
                  ) -> str:
    """The trace as deterministic JSON (sorted keys)."""
    return json.dumps(trace.to_dict(), sort_keys=True, indent=indent)


def trace_from_json(text: str) -> TelemetryTrace:
    return TelemetryTrace.from_dict(json.loads(text))


# -- CSV -------------------------------------------------------------
#
# One table, one record type per row:
#
#   record   name     device  a            b              c
#   trace    -        -       started_at   ended_at       -
#   span     id:parent.name   -  started_at ended_at      -
#   energy   span id  device  joules       active_joules  -
#   device   name     -       joules       active_joules  busy_seconds
#   sample   -        device  t            watts          -
#   counter  name     -       value        -              -
#
# Span identity: rows carry "id:parent" in the name column's companion
# id fields, where ids are pre-order indices — enough to rebuild the
# exact forest.

CSV_HEADER = ["record", "id", "parent", "name", "device", "a", "b", "c"]


def _span_rows(trace: TelemetryTrace) -> list[list]:
    rows: list[list] = []
    counter = 0

    def visit(span: SpanNode, parent_id) -> None:
        nonlocal counter
        span_id = counter
        counter += 1
        rows.append(["span", span_id,
                     "" if parent_id is None else parent_id,
                     span.name, "", span.started_at, span.ended_at, ""])
        for device in sorted(span.device_joules):
            rows.append(["energy", span_id, "", "", device,
                         span.device_joules[device],
                         span.active_joules.get(device, ""), ""])
        for child in span.children:
            visit(child, span_id)

    for root in trace.spans:
        visit(root, None)
    return rows


def trace_to_csv(trace: TelemetryTrace,
                 point: Optional[int] = None) -> str:
    """The trace as a tidy CSV table.

    ``point`` prefixes every row with a sweep-point index column, for
    concatenating multi-point runs into one file.
    """
    out = io.StringIO()
    writer = csv.writer(out, lineterminator="\n")
    header = CSV_HEADER if point is None else ["point", *CSV_HEADER]

    def emit(row: list) -> None:
        writer.writerow(row if point is None else [point, *row])

    writer.writerow(header)
    emit(["trace", "", "", "", "", trace.started_at, trace.ended_at, ""])
    for row in _span_rows(trace):
        emit(row)
    for dev in trace.devices:
        emit(["device", "", "", dev.name, "", dev.energy_joules,
              dev.active_energy_joules, dev.busy_seconds])
        for t, w in zip(dev.times, dev.watts):
            emit(["sample", "", "", "", dev.name, t, w, ""])
    for name in sorted(trace.counters):
        emit(["counter", "", "", name, "", trace.counters[name], "", ""])
    return out.getvalue()


def trace_from_csv(text: str) -> TelemetryTrace:
    """Invert :func:`trace_to_csv` (single-point form only)."""
    reader = csv.reader(io.StringIO(text))
    header = next(reader, None)
    if header != CSV_HEADER:
        raise ReproError(
            f"not a telemetry CSV (header {header!r}); multi-point "
            "exports carry a 'point' column and must be split first")
    trace = TelemetryTrace()
    spans: dict[int, SpanNode] = {}
    devices: dict[str, DeviceTimeline] = {}
    for row in reader:
        record, span_id, parent, name, device, a, b, c = row
        if record == "trace":
            trace.started_at = float(a)
            trace.ended_at = float(b)
        elif record == "span":
            node = SpanNode(name=name, started_at=float(a),
                            ended_at=float(b))
            spans[int(span_id)] = node
            if parent == "":
                trace.spans.append(node)
            else:
                spans[int(parent)].children.append(node)
        elif record == "energy":
            node = spans[int(span_id)]
            node.device_joules[device] = float(a)
            if b != "":
                node.active_joules[device] = float(b)
        elif record == "device":
            dev = DeviceTimeline(name=name, energy_joules=float(a),
                                 active_energy_joules=float(b),
                                 busy_seconds=float(c))
            devices[name] = dev
            trace.devices.append(dev)
        elif record == "sample":
            devices[device].times.append(float(a))
            devices[device].watts.append(float(b))
        elif record == "counter":
            trace.counters[name] = float(a)
        else:
            raise ReproError(f"unknown CSV record type {record!r}")
    for dev in trace.devices:
        dev.n_raw_samples = len(dev.times)
    return trace


# -- terminal rendering ----------------------------------------------


def render_flamegraph(trace: TelemetryTrace, width: int = 60,
                      active: bool = False) -> str:
    """An ASCII energy flamegraph of the span forest.

    Bar lengths are proportional to each span's share of the capture's
    total energy — metered by default, busy-time with ``active=True``.
    """
    if width < 10:
        raise ReproError("flamegraph width must be >= 10")
    total = trace.active_total_joules if active else trace.total_joules
    kind = "busy-time" if active else "metered"
    lines = [f"energy flamegraph ({kind}; 100% = {total:.4g} J over "
             f"{trace.duration:.4g} s)"]
    if total <= 0:
        lines.append("  (no energy recorded)")
        return "\n".join(lines)
    label_width = 2 + max((2 * depth + len(span.name)
                           for depth, span in trace.all_spans()),
                          default=10)
    for root in trace.spans:
        for depth, span in root.walk():
            joules = (span.active_total_joules if active
                      else span.total_joules)
            share = joules / total
            bar = "#" * max(1, round(share * width)) if joules > 0 else "."
            label = "  " * depth + span.name
            lines.append(f"{label:<{label_width}} {bar:<{width}} "
                         f"{joules:>10.4g} J {share:>6.1%}")
    unattributed = trace.unattributed_joules()
    if not active and total > 0 and abs(unattributed) > 1e-9 * total:
        lines.append(f"{'(unattributed)':<{label_width}} "
                     f"{'.':<{width}} {unattributed:>10.4g} J "
                     f"{unattributed / total:>6.1%}")
    return "\n".join(lines)


def device_rows(trace: TelemetryTrace) -> list[tuple]:
    """Per-device breakdown rows for the CLI table: (device, metered J,
    busy-time J, busy s, share of metered total)."""
    total = trace.total_joules
    return [
        (dev.name,
         round(dev.energy_joules, 6),
         round(dev.active_energy_joules, 6),
         round(dev.busy_seconds, 6),
         f"{dev.energy_joules / total:.1%}" if total > 0 else "-")
        for dev in trace.devices
    ]


def counter_rows(trace: TelemetryTrace) -> list[tuple]:
    """Counter rows for the CLI table, name-sorted."""
    return [(name, trace.counters[name])
            for name in sorted(trace.counters)]
