"""TelemetrySink: collect per-point traces from runner progress events.

The runner emits a :class:`~repro.runner.events.PointTraced` event
(carrying the decoded :class:`TelemetryTrace`) for every traced point —
cache hits included, since traced payloads store their trace.  A
``TelemetrySink`` is an ordinary event sink that accumulates those into
a per-point map plus run-level rollups; compose it with the printing
sink via :func:`tee`::

    from repro.runner import Runner
    from repro.telemetry import TelemetrySink

    sink = TelemetrySink()
    run = Runner(trace=True, on_event=sink).run(spec)
    sink.device_totals()        # Joules per device across the sweep
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.telemetry.trace import TelemetryTrace


@dataclass
class TelemetrySink:
    """Event sink that keeps every point's trace, in sweep order.

    ``forward`` (optional) receives every event after the sink records
    it, so one sink can both collect and keep a printer running.
    """

    forward: Optional[Callable[[Any], None]] = None
    traces: dict[int, TelemetryTrace] = field(default_factory=dict)
    knobs: dict[int, dict[str, Any]] = field(default_factory=dict)

    def __call__(self, event: Any) -> None:
        # imported here so constructing a sink never drags the runner in
        from repro.runner.events import PointTraced
        if isinstance(event, PointTraced):
            self.traces[event.index] = event.trace
            self.knobs[event.index] = dict(event.knobs)
        if self.forward is not None:
            self.forward(event)

    # -- rollups -----------------------------------------------------

    def device_totals(self) -> dict[str, float]:
        """Metered Joules per device, summed across every traced point."""
        totals: dict[str, float] = {}
        for trace in self.traces.values():
            for name, joules in trace.device_totals().items():
                totals[name] = totals.get(name, 0.0) + joules
        return dict(sorted(totals.items()))

    def counter_totals(self) -> dict[str, float]:
        """Counters summed across every traced point."""
        totals: dict[str, float] = {}
        for trace in self.traces.values():
            for name, value in trace.counters.items():
                totals[name] = totals.get(name, 0.0) + value
        return dict(sorted(totals.items()))

    def summary_rows(self) -> list[tuple]:
        """(point, duration s, metered J, busy-time J, top device) rows."""
        rows = []
        for index in sorted(self.traces):
            trace = self.traces[index]
            totals = trace.device_totals()
            top = max(totals, key=totals.get) if totals else "-"
            rows.append((index, round(trace.duration, 6),
                         round(trace.total_joules, 6),
                         round(trace.active_total_joules, 6), top))
        return rows


def tee(*sinks: Optional[Callable[[Any], None]]
        ) -> Callable[[Any], None]:
    """Fan one event stream out to several sinks (Nones skipped)."""
    active = [s for s in sinks if s is not None]

    def fanout(event: Any) -> None:
        for sink in active:
            sink(event)

    return fanout
