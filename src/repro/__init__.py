"""repro: energy-efficient data management, reproduced.

A working reproduction of Harizopoulos, Meza, Shah & Ranganathan,
"Energy Efficiency: The New Holy Grail of Data Management Systems
Research" (CIDR 2009): an energy-metered discrete-event hardware
substrate, a complete analytical query engine on top of it, an
energy-aware optimizer, consolidation machinery, and the paper's two
experiments plus ablations for its research agenda.

Quick start::

    from repro import ExperimentSpec, Runner
    run = Runner(workers=4).run(ExperimentSpec("fig2"))
    print(run.aggregate().rows())     # Figure 2, regenerated

or, from a shell::

    python -m repro.runner run fig1 --disks 36,66 --workers 2
"""

from repro.core.experiments import run_figure1, run_figure2
from repro.core.metrics import energy_efficiency, perf_per_watt
from repro.relational.executor import ExecutionContext, Executor, QueryResult
from repro.sim import Simulation

__version__ = "1.2.0"

__all__ = [
    "ExecutionContext",
    "Executor",
    "ExperimentSpec",
    "QueryResult",
    "RunResult",
    "Runner",
    "Simulation",
    "energy_efficiency",
    "perf_per_watt",
    "run_figure1",
    "run_figure2",
]

from repro.runner import ExperimentSpec, Runner, RunResult  # noqa: E402
