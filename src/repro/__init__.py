"""repro: energy-efficient data management, reproduced.

A working reproduction of Harizopoulos, Meza, Shah & Ranganathan,
"Energy Efficiency: The New Holy Grail of Data Management Systems
Research" (CIDR 2009): an energy-metered discrete-event hardware
substrate, a complete analytical query engine on top of it, an
energy-aware optimizer, consolidation machinery, a fleet-scale serving
layer, and the paper's two experiments plus ablations for its research
agenda.

Quick start::

    from repro import ExperimentSpec, Runner
    run = Runner(workers=4).run(ExperimentSpec("fig2"))
    print(run.aggregate().rows())     # Figure 2, regenerated

or, from a shell::

    python -m repro.runner run fig1 --disks 36,66 --workers 2
    python -m repro.runner run svc_policies   # fleet serving sweep

The v1 entry points (``run_figure1``, ``run_figure2``) still resolve
from here for compatibility, but are deprecated shims over the spec
API and warn on use; they are looked up lazily so no internal module
imports them.
"""

from repro.consolidation.scheduler import ScheduleReport
from repro.core.metrics import energy_efficiency, perf_per_watt
from repro.faults import (FaultSchedule, RetryPolicy, ShedPolicy,
                          build_fault_schedule, simulate_faulty_service)
from repro.relational.executor import ExecutionContext, Executor, QueryResult
from repro.runner import ExperimentSpec, Runner, RunResult
from repro.service.fleet import simulate_service
from repro.service.report import ServiceReport, ServiceSweepResult
from repro.service.spec import FleetSpec, NodeClass
from repro.service.workload import build_diurnal_stream
from repro.sim import Simulation
from repro.workloads.pipelines import (BatchTenant, DatasetCatalog,
                                       EtlReport, EtlScheduler,
                                       EtlSweepResult, PipelineSpec, Stage,
                                       run_pipeline)

__version__ = "1.9.0"

#: deprecated v1 entry points, resolved lazily (PEP 562) so importing
#: :mod:`repro` never touches them — they warn only when actually used
_DEPRECATED_SHIMS = {
    "run_figure1": ("repro.core.experiments", "run_figure1"),
    "run_figure2": ("repro.core.experiments", "run_figure2"),
}

__all__ = [
    "BatchTenant",
    "DatasetCatalog",
    "EtlReport",
    "EtlScheduler",
    "EtlSweepResult",
    "ExecutionContext",
    "Executor",
    "ExperimentSpec",
    "FaultSchedule",
    "FleetSpec",
    "NodeClass",
    "PipelineSpec",
    "QueryResult",
    "RetryPolicy",
    "RunResult",
    "Runner",
    "ScheduleReport",
    "ServiceReport",
    "ServiceSweepResult",
    "ShedPolicy",
    "Simulation",
    "Stage",
    "build_diurnal_stream",
    "build_fault_schedule",
    "energy_efficiency",
    "perf_per_watt",
    "run_pipeline",
    "simulate_faulty_service",
    "simulate_service",
    "run_figure1",
    "run_figure2",
]


def __getattr__(name: str):
    if name in _DEPRECATED_SHIMS:
        import importlib
        module_name, attr = _DEPRECATED_SHIMS[name]
        return getattr(importlib.import_module(module_name), attr)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_DEPRECATED_SHIMS))
