"""repro.flightrec — the fleet flight recorder.

Time-resolved observability for the serving and chaos engines: a
:func:`record` capture collects typed
:class:`~repro.flightrec.events.FleetEvent` streams (dispatch, DVFS,
QED holds, boots/drains/crashes, autoscaler verdicts, sheds, retries)
plus a columnar per-query table, finalized into a serializable
:class:`~repro.flightrec.events.FlightRecording`.  Rollups, SLO
burn-rate analysis, exporters, and the HTML timeline console live in
:mod:`~repro.flightrec.rollup`, :mod:`~repro.flightrec.slo`,
:mod:`~repro.flightrec.export`, and :mod:`~repro.flightrec.console`;
``python -m repro.flightrec`` is the operator CLI.

Recording is off by default and costs one module-global read per
engine hook when off (:mod:`repro.flightrec.context` — the telemetry
switch pattern); reports are byte-identical with or without a
recorder installed.
"""

from repro.flightrec.context import current_recorder
from repro.flightrec.events import FleetEvent, FlightRecording
from repro.flightrec.recorder import FlightRecorder, record

__all__ = [
    "FleetEvent",
    "FlightRecorder",
    "FlightRecording",
    "current_recorder",
    "record",
]
