"""SLO error-budget burn analysis over a flight recording.

The serving report says whether a tenant's overall p95 met its SLA;
the flight recorder can say *when it went wrong*.  :class:`SLOMonitor`
tumbles each tenant's completions into fixed windows and computes the
classic burn rate: the fraction of that window's completions that
overshot the SLA, divided by the error budget (default 5 % — "at most
1 in 20 queries may miss").  Burn 1.0 means the window consumed budget
exactly as fast as it accrues; a sustained stretch above 1.0 is a
*breach window*, and the worst window is where triage starts (find it
here, then read the dispatch/DVFS/batch events inside it — the
OPERATIONS.md walkthrough).

Queries that never completed (rejected, shed, crash-lost) are charged
as breaches in their *arrival* window: a refused query is a broken
promise too, and hiding it would let a shedding policy burn no budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.flightrec.events import DONE, FlightRecording
from repro.flightrec.rollup import window_starts

#: default error budget: at most 5 % of queries may miss their SLA
DEFAULT_ERROR_BUDGET = 0.05
DEFAULT_WINDOW_SECONDS = 60.0


@dataclass
class BurnWindow:
    """One tumbling window of a tenant's SLO arithmetic."""

    start: float
    end: float
    completed: int = 0
    breached: int = 0
    burn: float = 0.0


@dataclass
class TenantSLO:
    """A tenant's full burn curve plus its extracted breach windows."""

    tenant: str
    sla_seconds: Optional[float]
    error_budget: float
    windows: list[BurnWindow] = field(default_factory=list)
    #: maximal runs of consecutive windows with burn >= 1.0
    breach_windows: list[tuple[float, float, float]] = \
        field(default_factory=list)
    worst: Optional[BurnWindow] = None
    overall_p95: Optional[float] = None
    breached: bool = False

    def to_dict(self) -> dict[str, Any]:
        return {
            "tenant": self.tenant,
            "sla_seconds": self.sla_seconds,
            "error_budget": self.error_budget,
            "overall_p95": self.overall_p95,
            "breached": self.breached,
            "worst_window": (None if self.worst is None else {
                "start": self.worst.start, "end": self.worst.end,
                "completed": self.worst.completed,
                "breached": self.worst.breached,
                "burn": self.worst.burn}),
            "breach_windows": [
                {"start": s, "end": e, "peak_burn": b}
                for s, e, b in self.breach_windows],
            "burn": [w.burn for w in self.windows],
            "t": [w.start for w in self.windows],
        }


class SLOMonitor:
    """Rolling error-budget burn per tenant over one recording.

    ``window_seconds`` is the tumbling-window width; ``error_budget``
    the allowed SLA-miss fraction.  A tenant with no SLA has no burn
    (every window reads 0.0) and can never breach.
    """

    def __init__(self, recording: FlightRecording,
                 window_seconds: float = DEFAULT_WINDOW_SECONDS,
                 error_budget: float = DEFAULT_ERROR_BUDGET) -> None:
        if window_seconds <= 0:
            from repro.errors import ReproError
            raise ReproError("SLO window must be positive")
        if not 0 < error_budget <= 1.0:
            from repro.errors import ReproError
            raise ReproError(
                f"error budget must lie in (0, 1], got {error_budget}")
        self.recording = recording
        self.window_seconds = window_seconds
        self.error_budget = error_budget
        self._tenants = self._analyze()

    def tenants(self) -> list[TenantSLO]:
        return list(self._tenants)

    @property
    def any_breached(self) -> bool:
        return any(t.breached for t in self._tenants)

    def to_dict(self) -> dict[str, Any]:
        return {
            "window_seconds": self.window_seconds,
            "error_budget": self.error_budget,
            "any_breached": self.any_breached,
            "tenants": [t.to_dict() for t in self._tenants],
        }

    # -- the analysis ---------------------------------------------------

    def _analyze(self) -> list[TenantSLO]:
        rec = self.recording
        starts = window_starts(rec.end, self.window_seconds)
        q = rec.queries
        out: list[TenantSLO] = []
        for ti, spec in enumerate(rec.meta["tenants"]):
            sla = spec["sla_p95_seconds"]
            slo = TenantSLO(tenant=spec["name"], sla_seconds=sla,
                            error_budget=self.error_budget)
            slo.windows = [
                BurnWindow(t0, t0 + self.window_seconds)
                for t0 in starts]
            if sla is None:
                out.append(slo)
                continue
            latencies: list[float] = []
            for k in range(rec.n_queries):
                if q["tenant"][k] != ti:
                    continue
                if q["state"][k] == DONE and q["completion"][k] is not None:
                    at = q["completion"][k]
                    latency = at - q["arrival"][k]
                    latencies.append(latency)
                    miss = latency > sla
                else:
                    # a refused/lost query burns budget at its arrival
                    at = q["arrival"][k]
                    miss = True
                w = slo.windows[min(len(starts) - 1,
                                    int(at / self.window_seconds))]
                w.completed += 1
                if miss:
                    w.breached += 1
            for w in slo.windows:
                if w.completed:
                    w.burn = (w.breached / w.completed) \
                        / self.error_budget
            slo.worst = max(slo.windows, key=lambda w: w.burn,
                            default=None)
            slo.breach_windows = self._runs(slo.windows)
            if latencies:
                from repro.service.report import quantile
                slo.overall_p95 = quantile(sorted(latencies), 0.95)
                slo.breached = slo.overall_p95 > sla
            out.append(slo)
        return out

    @staticmethod
    def _runs(windows: list[BurnWindow]) \
            -> list[tuple[float, float, float]]:
        """Maximal consecutive runs with burn >= 1.0, as
        (start, end, peak_burn)."""
        runs: list[tuple[float, float, float]] = []
        open_at: Optional[float] = None
        peak = 0.0
        for w in windows:
            if w.burn >= 1.0:
                if open_at is None:
                    open_at = w.start
                    peak = w.burn
                else:
                    peak = max(peak, w.burn)
            elif open_at is not None:
                runs.append((open_at, w.start, peak))
                open_at = None
        if open_at is not None and windows:
            runs.append((open_at, windows[-1].end, peak))
        return runs
