"""``python -m repro.flightrec`` — the flight-recording console CLI.

Subcommands::

    summarize FILE [--point N] [--json]       # run shape + energy audit
    timeline  FILE [--point N] [--out FILE.html] [--title T]
                   [--slo-window W]           # render the HTML console
    slo       FILE [--point N] [--window W] [--budget B] [--json]
                                   # burn-rate report; exit 1 on breach
    events    FILE [--point N] [--filter k1,k2] [--csv | --queries]
                   [--limit N]                # dump the event stream

``FILE`` is either a bare recording (``FlightRecording.to_dict``
JSON) or a runner ``RunResult`` JSON produced with ``--record`` —
for a multi-point sweep, pick the point with ``--point``.

Exit codes: 0 ok, 1 SLO breach (``slo`` only), 2 usage/runtime error.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.cli import run_guarded
from repro.core.report import format_table
from repro.errors import ReproError
from repro.flightrec.events import FlightRecording


def load_recording(path: str,
                   point: Optional[int] = None) -> FlightRecording:
    """Load a recording from a bare dump or a runner result JSON."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except OSError as exc:
        raise ReproError(f"cannot read {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ReproError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise ReproError(f"{path}: expected a JSON object")
    if "queries" in data and "meta" in data:
        if point not in (None, 0):
            raise ReproError(
                f"{path} is a bare recording; --point does not apply")
        return FlightRecording.from_dict(data)
    points = data.get("points")
    if isinstance(points, list):
        recorded = [(idx, p["flightrec"]) for idx, p in enumerate(points)
                    if isinstance(p, dict) and p.get("flightrec")]
        if not recorded:
            raise ReproError(
                f"{path} holds no flight recordings; produce one with "
                "`python -m repro.runner run EXPERIMENT --record --json`")
        if point is None:
            if len(recorded) > 1:
                indices = ", ".join(str(i) for i, _ in recorded)
                raise ReproError(
                    f"{path} holds {len(recorded)} recordings (points "
                    f"{indices}); pick one with --point")
            return FlightRecording.from_dict(recorded[0][1])
        for idx, payload in recorded:
            if idx == point:
                return FlightRecording.from_dict(payload)
        raise ReproError(
            f"point {point} of {path} carries no recording")
    raise ReproError(
        f"{path}: neither a flight recording nor a runner result")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.flightrec",
        description="Inspect fleet flight recordings: summaries, SLO "
                    "burn analysis, event dumps, the timeline console.")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_input(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument("file", help="recording JSON or runner "
                                      "result with --record payloads")
        cmd.add_argument("--point", type=int, default=None,
                         help="sweep point index (multi-point results)")

    summarize = sub.add_parser(
        "summarize", help="run shape, outcome mix, energy audit")
    add_input(summarize)
    summarize.add_argument("--json", action="store_true",
                           dest="as_json")

    timeline = sub.add_parser(
        "timeline", help="render the self-contained HTML console")
    add_input(timeline)
    timeline.add_argument("--out", default="timeline.html",
                          metavar="FILE")
    timeline.add_argument("--title", default=None)
    timeline.add_argument("--slo-window", type=float, default=60.0,
                          metavar="SECONDS")

    slo = sub.add_parser(
        "slo", help="per-tenant burn report; exit 1 on any breach")
    add_input(slo)
    slo.add_argument("--window", type=float, default=60.0,
                     metavar="SECONDS")
    slo.add_argument("--budget", type=float, default=0.05,
                     help="error budget (default 0.05)")
    slo.add_argument("--json", action="store_true", dest="as_json")

    events = sub.add_parser(
        "events", help="dump the event stream (JSONL by default)")
    add_input(events)
    events.add_argument("--filter", default=None, metavar="KINDS",
                        help="comma-separated event kinds")
    events.add_argument("--csv", action="store_true", dest="as_csv")
    events.add_argument("--queries", action="store_true",
                        help="dump the per-query table as CSV instead")
    events.add_argument("--limit", type=int, default=None,
                        help="print at most N rows")
    return parser


def _cmd_summarize(args: argparse.Namespace) -> int:
    from repro.flightrec.rollup import summarize
    recording = load_recording(args.file, args.point)
    summary = summarize(recording)
    if args.as_json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    rows = []
    for key, value in summary.items():
        if isinstance(value, dict):
            value = ", ".join(f"{k}={v}" for k, v in value.items()) \
                or "-"
        elif isinstance(value, float):
            value = f"{value:,.6g}"
        rows.append((key, value))
    print(format_table(["field", "value"], rows,
                       title=f"flight recording: {args.file}"))
    return 0


def _cmd_timeline(args: argparse.Namespace) -> int:
    from repro.flightrec.console import render_timeline
    recording = load_recording(args.file, args.point)
    html = render_timeline(recording, title=args.title,
                           slo_window_seconds=args.slo_window)
    with open(args.out, "w", encoding="utf-8") as fh:
        fh.write(html)
    print(f"wrote {args.out}: {recording.n_nodes} node lane(s), "
          f"{len(recording.events)} event(s)")
    return 0


def _cmd_slo(args: argparse.Namespace) -> int:
    from repro.flightrec.slo import SLOMonitor
    recording = load_recording(args.file, args.point)
    monitor = SLOMonitor(recording, window_seconds=args.window,
                         error_budget=args.budget)
    if args.as_json:
        print(json.dumps(monitor.to_dict(), indent=2, sort_keys=True))
    else:
        rows = []
        for slo in monitor.tenants():
            worst = slo.worst
            rows.append((
                slo.tenant,
                "-" if slo.sla_seconds is None
                else f"{slo.sla_seconds:g}",
                "-" if slo.overall_p95 is None
                else f"{slo.overall_p95:.4f}",
                "BREACHED" if slo.breached else "ok",
                "-" if worst is None or worst.completed == 0
                else f"{worst.burn:.2f}",
                "-" if worst is None or worst.completed == 0
                else f"[{worst.start:.0f}s, {worst.end:.0f}s)",
                len(slo.breach_windows),
            ))
        print(format_table(
            ["tenant", "sla p95", "actual p95", "verdict",
             "worst burn", "worst window", "breach windows"],
            rows,
            title=f"SLO burn (window {args.window:g}s, budget "
                  f"{args.budget:g})"))
    return 1 if monitor.any_breached else 0


def _cmd_events(args: argparse.Namespace) -> int:
    from repro.flightrec.export import (write_events_csv,
                                        write_events_jsonl,
                                        write_queries_csv)
    recording = load_recording(args.file, args.point)
    kinds = None
    if args.filter:
        kinds = [k.strip() for k in args.filter.split(",") if k.strip()]
        known = set(recording.counts())
        unknown = [k for k in kinds if k not in known]
        if unknown and not set(kinds) & known:
            raise ReproError(
                f"no such event kind(s): {', '.join(unknown)} "
                f"(recording has: {', '.join(sorted(known))})")
    if args.limit is not None:
        import io
        buffer = io.StringIO()
        if args.queries:
            write_queries_csv(recording, buffer)
        elif args.as_csv:
            write_events_csv(recording, buffer, kinds)
        else:
            write_events_jsonl(recording, buffer, kinds)
        lines = buffer.getvalue().splitlines()
        head = args.limit + (1 if (args.as_csv or args.queries) else 0)
        for line in lines[:head]:
            print(line)
        return 0
    if args.queries:
        write_queries_csv(recording, sys.stdout)
    elif args.as_csv:
        write_events_csv(recording, sys.stdout, kinds)
    else:
        write_events_jsonl(recording, sys.stdout, kinds)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    def dispatch() -> int:
        if args.command == "summarize":
            return _cmd_summarize(args)
        if args.command == "timeline":
            return _cmd_timeline(args)
        if args.command == "slo":
            return _cmd_slo(args)
        return _cmd_events(args)

    return run_guarded(dispatch)


if __name__ == "__main__":
    sys.exit(main())
