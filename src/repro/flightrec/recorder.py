"""The flight-recorder collector: raw lanes in, typed recording out.

Hot-path philosophy (the telemetry collector's, applied to the fleet):
the serving engines never build event objects per query.  The common
case — a healthy, full-speed execution — costs one preallocated list
store (``serve_lane[k] = node``); its span is reconstructed vectorized
at :meth:`FlightRecorder.finalize` from the engine's own latency
array.  Rarer executions (downclocked, batched, under faults) append
one small tuple to a recorder-owned *lane* (``dvfs_serves``,
``batch_serves``, ``fault_serves``), and cold decisions go to the raw
``events`` list — everything derivable (execution ends, latencies,
SLA breaches, DVFS shift windows, batch join-up) is derived once, in
``finalize``, from those lanes plus the arrival arrays captured at
:meth:`FlightRecorder.begin_run`.  With no recorder installed every
site is one module-global read; with one installed the per-query cost
is one list store, which is what keeps a recorded run inside the 5 %
overhead gate (``benchmarks/test_flightrec_overhead.py``).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, Optional

import numpy as np

from repro.flightrec.context import install_recorder, uninstall_recorder
from repro.flightrec.events import (BATCH_FLUSH, DONE, DVFS_SHIFT, LOST,
                                    LOST_STATE, REJECT, REJECTED, RETRY,
                                    SHED, SHED_STATE, SLA_BREACH,
                                    FleetEvent, FlightRecording)


class FlightRecorder:
    """Collects one run's raw event lanes; :meth:`finalize` freezes
    them into a :class:`~repro.flightrec.events.FlightRecording`.

    ``detail=True`` additionally records per-arrival dispatch
    candidate tables (every considered node with its marginal watts
    and SLA fit) and per-call DVFS governor decisions — an O(fleet)
    cost per query the default mode skips.
    """

    def __init__(self, detail: bool = False) -> None:
        self.detail = detail
        #: healthy plain executions: per-query node index (-1 =
        #: not plain-served), preallocated by :meth:`begin_run` so the
        #: engine's hot path pays one list store per query; spans are
        #: reconstructed vectorized at :meth:`finalize` from the
        #: engine's own latency array (see :meth:`end_run`)
        self.serve_lane: list[int] = []
        #: healthy downclocked executions: (query, node, start,
        #: frequency, busy_watts)
        self.dvfs_serves: list[tuple] = []
        #: shared batch executions: (members, node, release_at, start,
        #: done, combined_seconds, frequency, busy_watts)
        self.batch_serves: list[tuple] = []
        #: chaos settled executions: (query_or_members, node, start,
        #: end, busy_watts, frequency, combined_seconds_or_None)
        self.fault_serves: list[tuple] = []
        #: cold raw events: (t, kind, node, tenant, query, data)
        self.events: list[tuple] = []
        self._meta: Optional[dict[str, Any]] = None
        self._stream = None
        self._latencies = None
        self._ended = False

    # -- run lifecycle -------------------------------------------------

    def begin_run(self, engine: str, stream, nodes,
                  policy_name: str, autoscaled: bool) -> None:
        """Capture the run's fixed context (arrival arrays, node and
        tenant tables).  One recorder records one run."""
        if self._meta is not None:
            from repro.errors import ReproError
            raise ReproError("flight recorder already holds a run; "
                             "recordings do not span runs")
        self._stream = stream
        self.serve_lane = [-1] * len(stream.times)
        self._meta = {
            "engine": engine,
            "policy": policy_name,
            "autoscaled": autoscaled,
            "nodes": [{
                "name": node.name,
                "node_class": node.node_class,
                "initially_on": bool(node.on),
                "model": node.model.to_dict(),
            } for node in nodes],
            "tenants": [{
                "name": t.name,
                "rate_per_s": t.rate_per_s,
                "sla_p95_seconds": t.sla_p95_seconds,
            } for t in stream.tenants],
        }

    def end_run(self, end: float, report, latencies=None) -> None:
        """Close the run at ``end`` with its closed-form report.

        ``latencies`` is the engine's per-query latency array (NaN for
        queries that never completed); with it, :meth:`finalize`
        reconstructs every plain serve's span vectorized instead of
        one append per query on the hot path.
        """
        if self._meta is None:
            from repro.errors import ReproError
            raise ReproError("flight recorder closed without a run")
        self._meta["end"] = float(end)
        self._meta["report"] = report.to_dict()
        self._latencies = latencies
        self._ended = True

    @property
    def has_run(self) -> bool:
        """Whether a completed run is ready to :meth:`finalize` (false
        when the recorded code never entered a serving engine)."""
        return self._meta is not None and self._ended

    # -- the derivation pass -------------------------------------------

    def finalize(self) -> FlightRecording:
        """Derive the typed recording from the raw lanes."""
        if self._meta is None or not self._ended:
            from repro.errors import ReproError
            raise ReproError("flight recorder has no completed run to "
                             "finalize")
        meta = self._meta
        stream = self._stream
        times_np = np.asarray(stream.times, dtype=float)
        service_np = np.asarray(stream.service_seconds, dtype=float)
        tenant_np = np.asarray(stream.tenant_index)
        n = len(times_np)
        speed = [spec["model"]["speed_factor"] for spec in meta["nodes"]]

        # parallel numpy shadows of the span columns, kept current by
        # every lane below so the derived-event pass stays vectorized
        lane_np = (np.asarray(self.serve_lane, dtype=np.int64)
                   if len(self.serve_lane) == n
                   else np.full(n, -1, dtype=np.int64))
        start_np = np.full(n, np.nan)
        comp_np = np.full(n, np.nan)
        freq_np = np.ones(n)

        plain = lane_np >= 0
        any_plain = bool(plain.any())
        if any_plain and self._latencies is None:
            from repro.errors import ReproError
            raise ReproError(
                "recorder holds plain serves but end_run() received no "
                "latency array to reconstruct their spans from")
        if any_plain:
            lat_np = np.asarray(self._latencies, dtype=float)
            speed_np = np.asarray(speed, dtype=float)
            comp_np = np.where(plain, times_np + lat_np, np.nan)
            start_np = comp_np - service_np \
                / speed_np[np.where(plain, lane_np, 0)]
        # all-plain fast path: every query is a healthy full-speed
        # serve, so no column ever holds a None — the recording keeps
        # the numpy arrays themselves and ``to_dict`` materializes
        # python lists only when the recording is serialized
        rare = bool(self.dvfs_serves or self.batch_serves
                    or self.fault_serves)
        fast = any_plain and not rare and bool(plain.all())
        if fast:
            arrival: Any = times_np
            service: Any = service_np
            tenant: Any = tenant_np
            node_col: Any = lane_np
            start_col: Any = start_np
            completion: Any = comp_np
            state: list = [DONE] * n
        else:
            arrival = times_np.tolist()
            service = service_np.tolist()
            tenant = tenant_np.tolist()
            node_col = [None] * n
            start_col = [None] * n
            completion = [None] * n
            state = [None] * n
            if any_plain:
                lane_l = lane_np.tolist()
                s_l = start_np.tolist()
                c_l = comp_np.tolist()
                for k in np.nonzero(plain)[0].tolist():
                    node_col[k] = lane_l[k]
                    start_col[k] = s_l[k]
                    completion[k] = c_l[k]
                    state[k] = DONE
        watts_col: list = [None] * n
        freq_col: list = [1.0] * n
        batch_col: list = [None] * n
        attempts: list = [1] * n
        dvfs_nodes: set[int] = set()

        for k, i, start, freq, busy_watts in self.dvfs_serves:
            done = start + service[k] / (speed[i] * freq)
            node_col[k] = i
            start_col[k] = start
            completion[k] = done
            watts_col[k] = busy_watts
            freq_col[k] = freq
            state[k] = DONE
            lane_np[k] = i
            start_np[k] = start
            comp_np[k] = done
            freq_np[k] = freq
            dvfs_nodes.add(i)

        batches: dict[str, list] = {
            "members": [], "first": [], "release_at": [],
            "combined_seconds": [], "raw_seconds": [], "reason": [],
            "node": [], "start": [], "completion": [], "watts": [],
            "frequency": [],
        }
        flush_by_first: dict[int, dict] = {}
        for t, kind, node, ti, query, data in self.events:
            if kind == BATCH_FLUSH:
                flush_by_first[data["first"]] = data

        def add_batch(members, i, release_at, start, done, combined,
                      freq, busy_watts) -> None:
            bid = len(batches["members"])
            first = members[0]
            flush = flush_by_first.get(first)
            batches["members"].append(len(members))
            batches["first"].append(first)
            batches["release_at"].append(release_at)
            batches["combined_seconds"].append(combined)
            batches["raw_seconds"].append(
                sum(service[m] for m in members))
            batches["reason"].append(
                flush["reason"] if flush is not None else "solo")
            batches["node"].append(i)
            batches["start"].append(start)
            batches["completion"].append(done)
            batches["watts"].append(busy_watts)
            batches["frequency"].append(freq)
            if flush is not None:
                flush["batch"] = bid
            if freq < 1.0:
                dvfs_nodes.add(i)
            for m in members:
                node_col[m] = i
                start_col[m] = start
                completion[m] = done
                watts_col[m] = busy_watts
                freq_col[m] = freq
                state[m] = DONE
                batch_col[m] = bid
                lane_np[m] = i
                start_np[m] = start
                comp_np[m] = done
                freq_np[m] = freq

        for members, i, release_at, start, done, combined, freq, \
                busy_watts in self.batch_serves:
            if len(members) == 1 and batch_col[members[0]] is None \
                    and members[0] not in flush_by_first:
                # a degenerate solo release is the un-batched engine
                # event: record it as a plain (or downclocked) serve
                k = members[0]
                node_col[k] = i
                start_col[k] = start
                completion[k] = done
                watts_col[k] = busy_watts
                freq_col[k] = freq
                state[k] = DONE
                lane_np[k] = i
                start_np[k] = start
                comp_np[k] = done
                freq_np[k] = freq
                if freq < 1.0:
                    dvfs_nodes.add(i)
            else:
                add_batch(members, i, release_at, start, done, combined,
                          freq, busy_watts)

        for who, i, start, end, busy_watts, freq, combined \
                in self.fault_serves:
            if isinstance(who, tuple) and (
                    len(who) > 1 or who[0] in flush_by_first):
                add_batch(who, i, start, start, end,
                          end - start if combined is None else combined,
                          freq, busy_watts)
            else:
                if isinstance(who, tuple):
                    # degenerate solo release under chaos: plain serve
                    who = who[0]
                node_col[who] = i
                start_col[who] = start
                completion[who] = end
                watts_col[who] = busy_watts
                freq_col[who] = freq
                state[who] = DONE
                lane_np[who] = i
                start_np[who] = start
                comp_np[who] = end
                freq_np[who] = freq
                if freq < 1.0:
                    dvfs_nodes.add(i)

        for t, kind, node, ti, query, data in self.events:
            if kind == RETRY:
                for k in data.get("members", (query,)):
                    if k is not None:
                        attempts[k] += 1
            elif kind == REJECT:
                for k in data.get("members", (query,)):
                    state[k] = REJECTED
            elif kind == SHED:
                for k in data.get("members", (query,)):
                    state[k] = SHED_STATE
            elif kind == LOST:
                for k in data.get("members", (query,)):
                    state[k] = LOST_STATE

        events = [FleetEvent(t=t, kind=kind, node=node, tenant=ti,
                             query=query, data=data)
                  for t, kind, node, ti, query, data in self.events]
        events.extend(self._derived_events(
            times_np, tenant_np, lane_np, start_np, comp_np, freq_np,
            dvfs_nodes))
        events.sort(key=lambda e: e.t)

        queries = {
            "arrival": arrival, "service": service, "tenant": tenant,
            "node": node_col, "start": start_col,
            "completion": completion, "watts": watts_col,
            "frequency": freq_col, "state": state, "batch": batch_col,
            "attempts": attempts,
        }
        recording = FlightRecording(meta=dict(meta), queries=queries,
                                    batches=batches, events=events)
        recording.meta["event_counts"] = recording.counts()
        return recording

    def _derived_events(self, times_np, tenant_np, lane_np, start_np,
                        comp_np, freq_np,
                        dvfs_nodes: set) -> list[FleetEvent]:
        """DVFS shift windows per node and per-query SLA breaches,
        derived vectorized from the numpy span shadows (NaN completion
        = never executed)."""
        out: list[FleetEvent] = []
        slas = [t["sla_p95_seconds"] for t in self._meta["tenants"]]
        sla_np = np.asarray(
            [s if s is not None else np.inf for s in slas]
        )[tenant_np]
        latency_np = comp_np - times_np
        for k in np.nonzero(latency_np > sla_np)[0].tolist():
            out.append(FleetEvent(
                t=float(comp_np[k]), kind=SLA_BREACH,
                node=int(lane_np[k]),
                tenant=int(tenant_np[k]), query=k,
                data={"latency": float(latency_np[k]),
                      "sla": slas[tenant_np[k]]}))
        for i in sorted(dvfs_nodes):
            idx = np.nonzero(lane_np == i)[0]
            spans = sorted(zip(start_np[idx].tolist(),
                               freq_np[idx].tolist()))
            last = 1.0
            for t, freq in spans:
                if freq != last:
                    out.append(FleetEvent(
                        t=t, kind=DVFS_SHIFT, node=i,
                        data={"from": last, "to": freq}))
                    last = freq
        return out


@contextmanager
def record(detail: bool = False) -> Iterator[FlightRecorder]:
    """Install a :class:`FlightRecorder` for the enclosed run.

    >>> from repro.flightrec import record
    >>> from repro.flightrec.context import current_recorder
    >>> with record() as rec:
    ...     current_recorder() is rec
    True
    >>> current_recorder() is None
    True
    """
    recorder = FlightRecorder(detail=detail)
    install_recorder(recorder)
    try:
        yield recorder
    finally:
        uninstall_recorder(recorder)
