"""Windowed time-series rollups over a flight recording.

The recording's raw material is spans and instants; operators read
curves.  This module tumbles the run into fixed windows and produces,
per window: each node's busy fraction and average power draw (idle
draw over powered-on time, active draw over execution spans,
boot/drain lumps landing in the window that contains the transition
instant), each tenant's completion count, latency percentiles, and
active Joules per query (a batch's active energy splits evenly across
its members), and the fleet's total draw.  Summing any node's
per-window ``watts * window`` over all windows reproduces that node's
share of :meth:`~repro.flightrec.events.FlightRecording.
replayed_energy_joules` — the rollup is a re-binning of the audit, not
a second estimate.
"""

from __future__ import annotations

import math
from typing import Any, Optional

from repro.flightrec.events import (BOOT, CRASH, DONE, DRAIN,
                                    TRUNCATED_SERVE, FlightRecording)
from repro.service.report import quantile


def default_window_seconds(end: float, target_windows: int = 60) -> float:
    """A window width giving ~``target_windows`` windows over the run."""
    if end <= 0:
        return 1.0
    return end / target_windows


def window_starts(end: float, window_seconds: float) -> list[float]:
    n = max(1, math.ceil(end / window_seconds - 1e-9))
    return [i * window_seconds for i in range(n)]


def _overlap(a0: float, a1: float, b0: float, b1: float) -> float:
    return max(0.0, min(a1, b1) - max(a0, b0))


def _execution_spans(recording: FlightRecording) \
        -> list[tuple[int, float, float, float, float]]:
    """Every distinct execution span: (node, start, end, busy_watts,
    frequency).

    Solo queries, shared batches (once each), and crash-truncated
    partial spans — the same span set the energy audit prices.
    """
    peak = [n["model"]["peak_watts"] for n in recording.meta["nodes"]]
    spans: list[tuple[int, float, float, float, float]] = []
    q = recording.queries
    for node, start, completion, watts, batch, freq in zip(
            q["node"], q["start"], q["completion"], q["watts"],
            q["batch"], q["frequency"]):
        if completion is None or batch is not None:
            continue
        spans.append((node, start, completion,
                      peak[node] if watts is None else watts, freq))
    b = recording.batches
    for node, start, completion, watts, freq in zip(
            b["node"], b["start"], b["completion"], b["watts"],
            b["frequency"]):
        if completion is None:
            continue
        spans.append((node, start, completion,
                      peak[node] if watts is None else watts, freq))
    for e in recording.events_of(TRUNCATED_SERVE):
        spans.append((e.node, e.data["start"], e.data["end"],
                      e.data["watts"], 1.0))
    return spans


def _on_spans(recording: FlightRecording) \
        -> tuple[list[list[tuple[float, float, float]]],
                 list[list[tuple[float, float]]]]:
    """Per node: powered-on spans (start, end, boot_window) and
    transition lumps [(t, joules)]."""
    nodes = recording.meta["nodes"]
    end = recording.end
    on: list[list[tuple[float, float, float]]] = [[] for _ in nodes]
    lumps: list[list[tuple[float, float]]] = [[] for _ in nodes]
    lifecycle: list[list[tuple[float, str]]] = [[] for _ in nodes]
    for e in recording.events_of(BOOT, DRAIN, CRASH):
        lifecycle[e.node].append((e.t, e.kind))
    for i, spec in enumerate(nodes):
        model = spec["model"]
        on_since = 0.0 if spec["initially_on"] else None
        boot_window = 0.0
        for t, kind in sorted(lifecycle[i]):
            if kind == BOOT:
                lumps[i].append((t, model["boot_joules"]))
                on_since = t
                boot_window = model["boot_seconds"]
            elif on_since is not None:
                on[i].append((on_since, t, boot_window))
                if kind == DRAIN:
                    lumps[i].append((t, model["drain_joules"]))
                on_since = None
        if on_since is not None:
            on[i].append((on_since, end, boot_window))
    return on, lumps


def node_rollup(recording: FlightRecording,
                window_seconds: Optional[float] = None) -> dict[str, Any]:
    """Per-node busy-fraction and average-watts curves.

    Returns ``{"window_seconds", "t": [starts...], "nodes": [{"name",
    "busy_fraction": [...], "watts": [...]}, ...], "fleet_watts":
    [...]}``.
    """
    end = recording.end
    if window_seconds is None:
        window_seconds = default_window_seconds(end)
    starts = window_starts(end, window_seconds)
    n_nodes = recording.n_nodes
    idle = [n["model"]["idle_watts"] for n in recording.meta["nodes"]]
    busy = [[0.0] * len(starts) for _ in range(n_nodes)]
    energy = [[0.0] * len(starts) for _ in range(n_nodes)]
    on, lumps = _on_spans(recording)

    def each_window(s0: float, s1: float):
        w0 = max(0, int(s0 / window_seconds))
        w1 = min(len(starts) - 1, int(s1 / window_seconds))
        for w in range(w0, w1 + 1):
            t0 = starts[w]
            yield w, _overlap(s0, s1, t0, t0 + window_seconds)

    for i in range(n_nodes):
        for s0, s1, boot_window in on[i]:
            # idle draw runs over the span net of its atomic boot
            # window (the lump already paid for those seconds)
            for w, dt in each_window(s0 + boot_window, s1):
                energy[i][w] += idle[i] * dt
        for t, joules in lumps[i]:
            w = min(len(starts) - 1, int(t / window_seconds))
            energy[i][w] += joules
    for i, s0, s1, watts, _freq in _execution_spans(recording):
        for w, dt in each_window(s0, s1):
            busy[i][w] += dt
            energy[i][w] += (watts - idle[i]) * dt

    nodes_out = []
    for i in range(n_nodes):
        nodes_out.append({
            "name": recording.node_name(i),
            "busy_fraction": [b / window_seconds for b in busy[i]],
            "watts": [e / window_seconds for e in energy[i]],
        })
    fleet = [sum(nodes_out[i]["watts"][w] for i in range(n_nodes))
             for w in range(len(starts))]
    return {"window_seconds": window_seconds, "t": starts,
            "nodes": nodes_out, "fleet_watts": fleet}


def tenant_rollup(recording: FlightRecording,
                  window_seconds: Optional[float] = None) -> dict[str, Any]:
    """Per-tenant latency and Joules/query curves, windowed by
    completion time.

    Returns ``{"window_seconds", "t", "tenants": [{"name", "sla",
    "completed": [...], "p95": [...], "joules_per_query": [...]},
    ...]}``.
    """
    end = recording.end
    if window_seconds is None:
        window_seconds = default_window_seconds(end)
    starts = window_starts(end, window_seconds)
    idle = [n["model"]["idle_watts"] for n in recording.meta["nodes"]]
    peak = [n["model"]["peak_watts"] for n in recording.meta["nodes"]]
    n_t = len(recording.meta["tenants"])
    lat: list[list[list[float]]] = \
        [[[] for _ in starts] for _ in range(n_t)]
    joules: list[list[float]] = [[0.0] * len(starts) for _ in range(n_t)]

    q = recording.queries
    b = recording.batches
    members_of = b["members"]
    for k in range(recording.n_queries):
        completion = q["completion"][k]
        if completion is None or q["state"][k] != DONE:
            continue
        w = min(len(starts) - 1, int(completion / window_seconds))
        ti = q["tenant"][k]
        lat[ti][w].append(completion - q["arrival"][k])
        node = q["node"][k]
        watts = q["watts"][k]
        active = (peak[node] if watts is None else watts) - idle[node]
        batch = q["batch"][k]
        if batch is None:
            joules[ti][w] += active * (completion - q["start"][k])
        else:
            # the shared execution's energy splits across its members
            joules[ti][w] += active \
                * (b["completion"][batch] - b["start"][batch]) \
                / members_of[batch]

    tenants_out = []
    for ti in range(n_t):
        completed = [len(ws) for ws in lat[ti]]
        tenants_out.append({
            "name": recording.tenant_name(ti),
            "sla": recording.tenant_sla(ti),
            "completed": completed,
            "p95": [quantile(sorted(ws), 0.95) if ws else None
                    for ws in lat[ti]],
            "joules_per_query": [
                j / c if c else None
                for j, c in zip(joules[ti], completed)],
        })
    return {"window_seconds": window_seconds, "t": starts,
            "tenants": tenants_out}


def summarize(recording: FlightRecording) -> dict[str, Any]:
    """The ``summarize`` CLI's payload: run shape, outcome mix, event
    counts, and the energy audit (replay vs closed form)."""
    meta = recording.meta
    report = meta.get("report", {})
    states: dict[str, int] = {}
    for s in recording.queries["state"]:
        key = s if s is not None else "unresolved"
        states[key] = states.get(key, 0) + 1
    replay = recording.replayed_energy_joules()
    closed = report.get("energy_joules")
    drift = (abs(replay - closed) / closed
             if closed else None)
    b = recording.batches
    held = sum(m for m in b["members"] if m > 1)
    return {
        "engine": meta["engine"],
        "policy": meta["policy"],
        "autoscaled": meta["autoscaled"],
        "nodes": recording.n_nodes,
        "tenants": len(meta["tenants"]),
        "queries": recording.n_queries,
        "end_seconds": recording.end,
        "states": dict(sorted(states.items())),
        "batches": len(b["members"]),
        "queries_batched": held,
        "batch_saved_seconds": math.fsum(
            r - c for r, c in zip(b["raw_seconds"],
                                  b["combined_seconds"])),
        "events": recording.counts(),
        "energy_joules_closed_form": closed,
        "energy_joules_replayed": replay,
        "energy_relative_drift": drift,
    }
