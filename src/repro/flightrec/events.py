"""Typed flight-recorder events and the serializable recording.

A :class:`FlightRecording` is the frozen product of one recorded run:
a columnar per-query table (arrival, service demand, tenant, chosen
node, execution window, power state, outcome), a table of shared batch
executions (QED), and a time-ordered list of discrete
:class:`FleetEvent` decision records (boots, drains, crashes, repairs,
throttle windows, hold open/join, batch flushes, autoscaler verdicts,
sheds, retries, timeouts, truncated executions).  Everything is plain
floats/ints/strings, so :meth:`FlightRecording.to_dict` /
:meth:`FlightRecording.from_dict` invert exactly and recordings ride
runner payloads through the process pool and the result cache the way
:class:`~repro.telemetry.trace.TelemetryTrace` does.

The recording is self-auditing: :meth:`FlightRecording.
replayed_energy_joules` re-prices the run from nothing but the event
stream — boot/drain lumps, idle draw over powered-on spans, and each
execution window's active draw — and the integration tests pin that
replay to the closed-form :class:`~repro.service.report.ServiceReport`
total to 1e-9 relative, which is what makes the stream trustworthy as
an *attribution* of the report's Joules rather than a parallel
estimate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Optional

# -- event kinds -----------------------------------------------------
#: node lifecycle: powered on (data: reason = initial | scale_up |
#: emergency | repair), powered off into a drain window, crashed
#: (data: repair_at), repaired back into service
BOOT = "boot"
DRAIN = "drain"
CRASH = "crash"
REPAIR = "repair"
#: chaos windows: thermal throttle and RAID disk-failure spans
THROTTLE_START = "throttle_start"
THROTTLE_END = "throttle_end"
DISK_FAIL = "disk_fail"
DISK_RECOVER = "disk_recover"
#: QED hold protocol: a queue opened (data: deadline, window), a later
#: arrival joined it, the queue flushed into a shared batch (data:
#: batch, members, reason = deadline | full | flush | solo)
HOLD_OPEN = "hold_open"
HOLD_JOIN = "hold_join"
BATCH_FLUSH = "batch_flush"
#: autoscaler verdicts (data: want capacity, on capacity, booted /
#: drained node lists, rejected candidates with reasons)
SCALE = "scale"
EMERGENCY_SCALE = "emergency_scale"
#: degradation incidents
REJECT = "reject"
SHED = "shed"
RETRY = "retry"
TIMEOUT = "timeout"
LOST = "lost"
#: a crash cut an execution short: the span up to the crash instant
#: drew power (data: start, end, watts); the query itself settles
#: elsewhere (retry) or is lost
TRUNCATED_SERVE = "truncated_serve"
#: opt-in dispatch detail: the considered candidate table (data:
#: chosen, candidates = [[node, marginal_watts, est_latency, fits]])
DISPATCH = "dispatch"
#: opt-in DVFS governor detail: one frequency decision (data:
#: frequency, sla_seconds)
DVFS_DECISION = "dvfs_decision"
#: derived at finalize: per-node governor state shifts (data: from,
#: to) and per-query SLA overshoots (data: latency, sla)
DVFS_SHIFT = "dvfs_shift"
SLA_BREACH = "sla_breach"

#: per-query outcome codes in the columnar table
DONE = "done"
REJECTED = "rejected"
SHED_STATE = "shed"
LOST_STATE = "lost"


@dataclass(frozen=True)
class FleetEvent:
    """One timestamped, typed record of a fleet decision or incident.

    ``node`` / ``tenant`` / ``query`` index the recording's node,
    tenant, and arrival tables; each is ``None`` when the event is not
    about one (an autoscaler verdict has no tenant, a hold-open no
    node).  ``data`` carries the kind-specific payload and is always
    JSON-safe.
    """

    t: float
    kind: str
    node: Optional[int] = None
    tenant: Optional[int] = None
    query: Optional[int] = None
    data: Mapping[str, Any] = field(default_factory=dict)

    def to_row(self) -> list:
        return [self.t, self.kind, self.node, self.tenant, self.query,
                dict(self.data)]

    @classmethod
    def from_row(cls, row) -> "FleetEvent":
        t, kind, node, tenant, query, data = row
        return cls(t=float(t), kind=str(kind),
                   node=None if node is None else int(node),
                   tenant=None if tenant is None else int(tenant),
                   query=None if query is None else int(query),
                   data=dict(data))


#: the parallel per-query columns, in serialization order
_QUERY_COLUMNS = ("arrival", "service", "tenant", "node", "start",
                  "completion", "watts", "frequency", "state", "batch",
                  "attempts")

#: the per-batch columns (one row per shared QED execution)
_BATCH_COLUMNS = ("members", "first", "release_at", "combined_seconds",
                  "raw_seconds", "reason", "node", "start", "completion",
                  "watts", "frequency")


def _as_list(column) -> list:
    """A query column as a plain list (numpy arrays convert)."""
    tolist = getattr(column, "tolist", None)
    return tolist() if tolist is not None else column


@dataclass
class FlightRecording:
    """The frozen, serializable product of one recorded run.

    ``meta`` describes the run (engine, policy, node/tenant tables,
    the closed-form report); ``queries`` is the columnar per-arrival
    table (:data:`_QUERY_COLUMNS`); ``batches`` holds one row per
    shared QED execution (:data:`_BATCH_COLUMNS`; solo queries carry
    ``batch = None``); ``events`` is the time-ordered discrete stream.
    """

    meta: dict[str, Any]
    queries: dict[str, list]
    batches: dict[str, list]
    events: list[FleetEvent]

    # -- shape ---------------------------------------------------------

    @property
    def n_queries(self) -> int:
        return len(self.queries["arrival"])

    @property
    def n_nodes(self) -> int:
        return len(self.meta["nodes"])

    @property
    def end(self) -> float:
        return float(self.meta["end"])

    def node_name(self, i: int) -> str:
        return self.meta["nodes"][i]["name"]

    def tenant_name(self, ti: int) -> str:
        return self.meta["tenants"][ti]["name"]

    def tenant_sla(self, ti: int) -> Optional[float]:
        return self.meta["tenants"][ti]["sla_p95_seconds"]

    def events_of(self, *kinds: str) -> Iterator[FleetEvent]:
        wanted = set(kinds)
        return (e for e in self.events if e.kind in wanted)

    def counts(self) -> dict[str, int]:
        """Event counts by kind, descending."""
        out: dict[str, int] = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return dict(sorted(out.items(), key=lambda kv: (-kv[1], kv[0])))

    # -- the energy audit ----------------------------------------------

    def replayed_energy_joules(self) -> float:
        """Re-price the whole run from the event stream alone.

        Walks each node's lifecycle events (boot lumps, drain lumps,
        idle draw over every powered-on span net of its atomic boot
        window) and adds every execution window's active draw — solo
        query spans, shared batch spans once each, and crash-truncated
        partial spans.  The result must match the closed-form
        ``ServiceReport.energy_joules`` to 1e-9 relative; any drift
        means the stream lost or double-counted a decision.
        """
        nodes = self.meta["nodes"]
        terms: list[float] = []
        # lifecycle: idle draw + transition lumps per node
        lifecycle: list[list[tuple[float, str]]] = [[] for _ in nodes]
        for e in self.events:
            if e.kind in (BOOT, DRAIN, CRASH):
                lifecycle[e.node].append((e.t, e.kind))
        end = self.end
        for i, spec in enumerate(nodes):
            model = spec["model"]
            idle = model["idle_watts"]
            on_since = 0.0 if spec["initially_on"] else None
            boot_window = 0.0  # the initial ON span has no boot
            for t, kind in sorted(lifecycle[i]):
                if kind == BOOT:
                    terms.append(model["boot_joules"])
                    on_since = t
                    boot_window = model["boot_seconds"]
                elif on_since is not None:  # DRAIN or CRASH closes it
                    terms.append(idle * (t - on_since - boot_window))
                    if kind == DRAIN:
                        terms.append(model["drain_joules"])
                    on_since = None
            if on_since is not None:  # finalize closes without drain
                terms.append(idle * (end - on_since - boot_window))
        # active draw above idle: solo spans, batch spans, truncations
        idle_of = [spec["model"]["idle_watts"] for spec in nodes]
        peak_of = [spec["model"]["peak_watts"] for spec in nodes]
        q = self.queries
        for node, start, completion, watts, batch in zip(
                q["node"], q["start"], q["completion"], q["watts"],
                q["batch"]):
            if completion is None or batch is not None:
                continue
            active = (peak_of[node] if watts is None else watts) \
                - idle_of[node]
            terms.append(active * (completion - start))
        b = self.batches
        for node, start, completion, watts in zip(
                b["node"], b["start"], b["completion"], b["watts"]):
            if completion is None:
                continue
            active = (peak_of[node] if watts is None else watts) \
                - idle_of[node]
            terms.append(active * (completion - start))
        for e in self.events:
            if e.kind == TRUNCATED_SERVE:
                terms.append((e.data["watts"] - idle_of[e.node])
                             * (e.data["end"] - e.data["start"]))
        return math.fsum(terms)

    # -- serialization -------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        # query columns may be numpy arrays (the recorder's all-plain
        # fast path defers list materialization to here — see
        # ``FlightRecorder.finalize``); serialize them as plain lists
        return {
            "meta": self.meta,
            "queries": {c: _as_list(self.queries[c])
                        for c in _QUERY_COLUMNS},
            "batches": {c: self.batches[c] for c in _BATCH_COLUMNS},
            "events": [e.to_row() for e in self.events],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FlightRecording":
        queries = {c: list(data["queries"][c]) for c in _QUERY_COLUMNS}
        batches = {c: list(data["batches"][c]) for c in _BATCH_COLUMNS}
        return cls(
            meta=dict(data["meta"]),
            queries=queries,
            batches=batches,
            events=[FleetEvent.from_row(row) for row in data["events"]],
        )
