"""The process-global flight-recorder switch.

Recording is *off* by default: :func:`current_recorder` returns
``None`` and every emission site in the serving and chaos engines
reduces to one module-global read plus one ``is None`` test — the same
zero-cost-when-off contract :mod:`repro.telemetry.context` established
(the overhead guard in ``benchmarks/test_flightrec_overhead.py`` holds
the *enabled* cost under 5 %; disabled it is unmeasurable, and the
closed-form reports stay byte-identical either way).

This module deliberately imports nothing from the rest of the package,
so any engine module can hook into it without creating import cycles.
Worker processes each carry their own global, which is exactly the
isolation the runner's process pool needs: a recorded point captures
in its own worker and ships the finished recording back as plain
dicts.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.flightrec.recorder import FlightRecorder

_recorder: Optional["FlightRecorder"] = None


def current_recorder() -> Optional["FlightRecorder"]:
    """The active recorder, or ``None`` when recording is off."""
    return _recorder


def install_recorder(recorder: "FlightRecorder") -> None:
    """Make ``recorder`` the process-wide active recorder.

    Nesting is refused: a recording inside a recording almost always
    means a missing :func:`uninstall_recorder` (e.g. a leaked context
    manager), and interleaving two runs' events would corrupt both
    recordings.
    """
    global _recorder
    if _recorder is not None:
        from repro.errors import ReproError
        raise ReproError("a flight recorder is already installed; "
                         "recordings do not nest")
    _recorder = recorder


def uninstall_recorder(recorder: "FlightRecorder") -> None:
    """Deactivate ``recorder`` (no-op if it is not the active one)."""
    global _recorder
    if _recorder is recorder:
        _recorder = None
