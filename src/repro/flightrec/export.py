"""Flight-recording exporters: JSONL event streams and tidy CSV.

Three shapes, all stream-friendly (write row by row, no buffering of
the whole recording):

* :func:`write_events_jsonl` — one JSON object per event line, the
  interchange format for downstream log tooling;
* :func:`write_events_csv` — the same stream as a flat table (the
  kind-specific payload rides as one JSON-encoded column);
* :func:`write_queries_csv` — the columnar per-query table, one row
  per arrival, for spreadsheet-side latency/energy work.

Every writer takes an open text file handle, so the CLI can point
them at a file or at stdout equally.
"""

from __future__ import annotations

import csv
import json
from typing import Iterable, Optional, TextIO

from repro.flightrec.events import (_QUERY_COLUMNS, FleetEvent,
                                    FlightRecording)

#: the flat event columns, payload last
EVENT_COLUMNS = ("t", "kind", "node", "tenant", "query", "data")


def iter_events(recording: FlightRecording,
                kinds: Optional[Iterable[str]] = None,
                ) -> Iterable[FleetEvent]:
    """The recording's events, optionally filtered to ``kinds``."""
    if kinds is None:
        return iter(recording.events)
    return recording.events_of(*kinds)


def write_events_jsonl(recording: FlightRecording, fh: TextIO,
                       kinds: Optional[Iterable[str]] = None) -> int:
    """One compact JSON object per line; returns the line count."""
    n = 0
    for e in iter_events(recording, kinds):
        fh.write(json.dumps(
            {"t": e.t, "kind": e.kind, "node": e.node,
             "tenant": e.tenant, "query": e.query,
             "data": dict(e.data)},
            sort_keys=True, separators=(",", ":")))
        fh.write("\n")
        n += 1
    return n


def write_events_csv(recording: FlightRecording, fh: TextIO,
                     kinds: Optional[Iterable[str]] = None) -> int:
    """The event stream as a flat CSV table; returns the row count."""
    writer = csv.writer(fh, lineterminator="\n")
    writer.writerow(EVENT_COLUMNS)
    n = 0
    for e in iter_events(recording, kinds):
        writer.writerow([e.t, e.kind, e.node, e.tenant, e.query,
                         json.dumps(dict(e.data), sort_keys=True)])
        n += 1
    return n


def write_queries_csv(recording: FlightRecording, fh: TextIO) -> int:
    """The per-query columnar table as CSV, one row per arrival."""
    writer = csv.writer(fh, lineterminator="\n")
    writer.writerow(("query",) + _QUERY_COLUMNS)
    q = recording.queries
    n = recording.n_queries
    for k in range(n):
        writer.writerow([k] + [q[c][k] for c in _QUERY_COLUMNS])
    return n
