"""The operator timeline console: one recording, one HTML file.

:func:`render_timeline` turns a
:class:`~repro.flightrec.events.FlightRecording` into a self-contained
HTML page (inline CSS + SVG, no scripts, no external assets — the
observatory dashboard's conventions, including its validated palette):

* a swimlane per node, rasterized to pixel bins with incident
  priority — crashed > degraded (throttle/disk) > downclocked (DVFS)
  > busy > boot window > powered-on idle > off;
* an overlay strip of discrete decisions: autoscaler verdicts,
  emergency scale-ups, boots, drains, crashes;
* per-tenant QED hold spans (first arrival to release) colored by
  flush reason, so held windows and what released them read directly;
* per-tenant SLO burn strips (tumbling windows shaded by error-budget
  burn rate, breach runs outlined);
* the fleet power curve, re-binned from the same spans the energy
  audit prices;
* a held-batch table answering "which queries did QED hold, for how
  long, and what did each held window save".
"""

from __future__ import annotations

import html
from typing import Any, Optional

from repro.flightrec.events import (BOOT, CRASH, DISK_FAIL, DISK_RECOVER,
                                    DRAIN, EMERGENCY_SCALE, SCALE,
                                    THROTTLE_END, THROTTLE_START,
                                    FlightRecording)
from repro.flightrec.rollup import _execution_spans, _on_spans, node_rollup
from repro.flightrec.slo import SLOMonitor
from repro.observatory.dashboard import SERIES_DARK, SERIES_LIGHT

# lane raster state codes, ascending paint priority
_OFF, _ON, _BOOT, _BUSY, _DOWNCLOCK, _DEGRADED, _CRASHED = range(7)
_STATE_FILL = {
    _ON: "var(--surface-2)",
    _BOOT: "var(--s7)",
    _BUSY: "var(--s1)",
    _DOWNCLOCK: "var(--s3)",
    _DEGRADED: "var(--warn)",
    _CRASHED: "var(--bad)",
}
_STATE_LABEL = (
    (_BUSY, "busy (full speed)"), (_DOWNCLOCK, "busy (downclocked)"),
    (_DEGRADED, "throttle/disk window"), (_CRASHED, "crashed"),
    (_BOOT, "boot window"), (_ON, "on, idle"),
)

_CSS = """
:root {
  color-scheme: light dark;
  --surface-1: #fcfcfb; --surface-2: #f4f3f1;
  --text-primary: #0b0b0b; --text-secondary: #52514e;
  --grid: #e4e2de; --accent: #2a78d6;
  --ok: #008300; --bad: #e34948; --warn: #eda100;
%SERIES_LIGHT%
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface-1: #1a1a19; --surface-2: #242422;
    --text-primary: #ffffff; --text-secondary: #c3c2b7;
    --grid: #383835; --accent: #3987e5;
    --ok: #00a300; --bad: #e66767; --warn: #c98500;
%SERIES_DARK%
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 24px; background: var(--surface-1);
  color: var(--text-primary);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 16px; margin: 28px 0 8px; }
.sub { color: var(--text-secondary); margin-bottom: 20px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin: 16px 0; }
.tile {
  background: var(--surface-2); border-radius: 8px;
  padding: 12px 16px; min-width: 130px;
}
.tile .v { font-size: 22px; font-weight: 650; }
.tile .k { font-size: 12px; color: var(--text-secondary); }
table { border-collapse: collapse; margin-top: 8px; }
th, td {
  text-align: left; padding: 4px 12px 4px 0; font-size: 13px;
  border-bottom: 1px solid var(--grid);
}
th { color: var(--text-secondary); font-weight: 600; }
td.num { font-variant-numeric: tabular-nums; }
.legend { display: flex; gap: 16px; flex-wrap: wrap;
          font-size: 12px; color: var(--text-secondary);
          margin: 4px 0 8px; }
.legend .swatch { display: inline-block; width: 10px; height: 10px;
                  border-radius: 3px; margin-right: 5px;
                  vertical-align: -1px; }
svg text { fill: var(--text-secondary); font-size: 10px;
           font-family: inherit; }
"""

_LANE_H = 14
_LANE_GAP = 4
_LABEL_W = 90


def _esc(text: Any) -> str:
    return html.escape(str(text), quote=True)


def _fmt(value: Optional[float], digits: int = 2) -> str:
    if value is None:
        return "-"
    return f"{value:,.{digits}f}"


def _legend(entries) -> str:
    return ('<div class="legend">' + "".join(
        f'<span><span class="swatch" style="background:{color}">'
        f'</span>{_esc(label)}</span>' for label, color in entries)
        + "</div>")


def _runs(states: list[int]):
    """Run-length encode a raster lane: (x0, x1, state), state > OFF."""
    out = []
    x0 = 0
    for x in range(1, len(states) + 1):
        if x == len(states) or states[x] != states[x0]:
            if states[x0] != _OFF:
                out.append((x0, x, states[x0]))
            x0 = x
    return out


def _node_lanes(recording: FlightRecording, width: int) -> str:
    """The per-node swimlane SVG plus its decision-overlay strip."""
    end = recording.end or 1.0
    n_nodes = recording.n_nodes
    px = end / width

    def bins(t0: float, t1: float):
        b0 = max(0, min(width - 1, int(t0 / px)))
        b1 = max(0, min(width - 1, int(max(t0, t1 - 1e-12) / px)))
        return range(b0, b1 + 1)

    lanes = [[_OFF] * width for _ in range(n_nodes)]

    def paint(i: int, t0: float, t1: float, state: int) -> None:
        lane = lanes[i]
        for b in bins(t0, t1):
            if state > lane[b]:
                lane[b] = state

    on, _lumps = _on_spans(recording)
    for i in range(n_nodes):
        for s0, s1, boot_window in on[i]:
            paint(i, s0, s1, _ON)
            if boot_window > 0:
                paint(i, s0, min(s1, s0 + boot_window), _BOOT)
    for i, s0, s1, _watts, freq in _execution_spans(recording):
        paint(i, s0, s1, _DOWNCLOCK if freq < 1.0 else _BUSY)
    open_window: dict[tuple[int, str], float] = {}
    for e in recording.events:
        if e.kind in (THROTTLE_START, DISK_FAIL):
            open_window.setdefault((e.node, e.kind), e.t)
        elif e.kind == THROTTLE_END:
            t0 = open_window.pop((e.node, THROTTLE_START), None)
            if t0 is not None:
                paint(e.node, t0, e.t, _DEGRADED)
        elif e.kind == DISK_RECOVER:
            t0 = open_window.pop((e.node, DISK_FAIL), None)
            if t0 is not None:
                paint(e.node, t0, e.t, _DEGRADED)
        elif e.kind == CRASH:
            paint(e.node, e.t, min(end, e.data.get("repair_at", end)),
                  _CRASHED)
    for (i, kind), t0 in open_window.items():
        paint(i, t0, end, _DEGRADED)

    strip_h = 12
    height = strip_h + n_nodes * (_LANE_H + _LANE_GAP) + 16
    parts = [f'<svg width="{_LABEL_W + width}" height="{height}" '
             f'viewBox="0 0 {_LABEL_W + width} {height}" '
             'role="img" aria-label="node timeline">']
    # decision overlay strip: one tick per discrete verdict
    tick_color = {SCALE: "var(--accent)", EMERGENCY_SCALE: "var(--bad)",
                  BOOT: "var(--ok)", DRAIN: "var(--text-secondary)",
                  CRASH: "var(--bad)"}
    for e in recording.events:
        color = tick_color.get(e.kind)
        if color is None:
            continue
        x = _LABEL_W + min(width - 1, int(e.t / px))
        parts.append(f'<rect x="{x}" y="0" width="2" '
                     f'height="{strip_h - 2}" fill="{color}">'
                     f'<title>{_esc(e.kind)} @ {e.t:.1f}s</title></rect>')
    for i in range(n_nodes):
        y = strip_h + i * (_LANE_H + _LANE_GAP)
        parts.append(f'<text x="0" y="{y + _LANE_H - 3}">'
                     f'{_esc(recording.node_name(i))}</text>')
        parts.append(f'<rect x="{_LABEL_W}" y="{y}" width="{width}" '
                     f'height="{_LANE_H}" fill="none" '
                     'stroke="var(--grid)"/>')
        for x0, x1, state in _runs(lanes[i]):
            parts.append(
                f'<rect x="{_LABEL_W + x0}" y="{y}" '
                f'width="{x1 - x0}" height="{_LANE_H}" '
                f'fill="{_STATE_FILL[state]}"/>')
    axis_y = strip_h + n_nodes * (_LANE_H + _LANE_GAP) + 10
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        x = _LABEL_W + int(frac * (width - 1))
        parts.append(f'<text x="{x}" y="{axis_y}" '
                     f'text-anchor="middle">{frac * end:.0f}s</text>')
    parts.append("</svg>")
    return "".join(parts)


def _hold_lanes(recording: FlightRecording, width: int) -> str:
    """Per-tenant QED hold spans (first arrival to release)."""
    b = recording.batches
    if not b["members"]:
        return '<p class="sub">no shared batches in this recording</p>'
    end = recording.end or 1.0
    px = end / width
    arrival = recording.queries["arrival"]
    tenant = recording.queries["tenant"]
    n_t = len(recording.meta["tenants"])
    reason_color = {"deadline": "var(--s1)", "full": "var(--s2)",
                    "flush": "var(--s4)", "solo": "var(--grid)"}
    height = n_t * (_LANE_H + _LANE_GAP) + 16
    parts = [f'<svg width="{_LABEL_W + width}" height="{height}" '
             f'viewBox="0 0 {_LABEL_W + width} {height}" '
             'role="img" aria-label="QED hold windows">']
    for ti in range(n_t):
        y = ti * (_LANE_H + _LANE_GAP)
        parts.append(f'<text x="0" y="{y + _LANE_H - 3}">'
                     f'{_esc(recording.tenant_name(ti))}</text>')
        parts.append(f'<rect x="{_LABEL_W}" y="{y}" width="{width}" '
                     f'height="{_LANE_H}" fill="none" '
                     'stroke="var(--grid)"/>')
    for idx in range(len(b["members"])):
        first = b["first"][idx]
        ti = tenant[first]
        t0 = arrival[first]
        t1 = b["release_at"][idx]
        x0 = _LABEL_W + min(width - 1, int(t0 / px))
        x1 = _LABEL_W + min(width - 1, int(t1 / px))
        y = ti * (_LANE_H + _LANE_GAP)
        color = reason_color.get(b["reason"][idx], "var(--s5)")
        parts.append(
            f'<rect x="{x0}" y="{y + 2}" width="{max(1, x1 - x0)}" '
            f'height="{_LANE_H - 4}" fill="{color}">'
            f'<title>batch {idx}: {b["members"][idx]} queries held '
            f'{t1 - t0:.2f}s ({_esc(b["reason"][idx])})</title></rect>')
    parts.append("</svg>")
    return "".join(parts)


def _burn_strips(monitor: SLOMonitor, width: int) -> str:
    """Per-tenant SLO burn strips; cell opacity tracks burn rate."""
    tenants = monitor.tenants()
    if not tenants:
        return ""
    height = len(tenants) * (_LANE_H + _LANE_GAP) + 4
    parts = [f'<svg width="{_LABEL_W + width}" height="{height}" '
             f'viewBox="0 0 {_LABEL_W + width} {height}" '
             'role="img" aria-label="SLO burn">']
    for row, slo in enumerate(tenants):
        y = row * (_LANE_H + _LANE_GAP)
        parts.append(f'<text x="0" y="{y + _LANE_H - 3}">'
                     f'{_esc(slo.tenant)}</text>')
        parts.append(f'<rect x="{_LABEL_W}" y="{y}" width="{width}" '
                     f'height="{_LANE_H}" fill="none" '
                     'stroke="var(--grid)"/>')
        n_w = len(slo.windows)
        if not n_w:
            continue
        cell = width / n_w
        for wi, w in enumerate(slo.windows):
            if w.burn <= 0:
                continue
            color = "var(--bad)" if w.burn >= 1.0 else "var(--warn)"
            opacity = min(1.0, 0.25 + 0.75 * min(w.burn, 2.0) / 2.0)
            parts.append(
                f'<rect x="{_LABEL_W + wi * cell:.1f}" y="{y + 1}" '
                f'width="{max(cell, 1):.1f}" height="{_LANE_H - 2}" '
                f'fill="{color}" fill-opacity="{opacity:.2f}">'
                f'<title>{_esc(slo.tenant)} [{w.start:.0f}s, '
                f'{w.end:.0f}s): burn {w.burn:.2f} '
                f'({w.breached}/{w.completed} missed)</title></rect>')
    parts.append("</svg>")
    return "".join(parts)


def _power_strip(rollup: dict[str, Any], width: int) -> str:
    fleet = rollup["fleet_watts"]
    if not fleet:
        return ""
    h = 60
    top = max(fleet) or 1.0
    n = len(fleet)
    pts = " ".join(
        f"{_LABEL_W + (i + 0.5) * width / n:.1f},"
        f"{h - (w / top) * (h - 12):.1f}"
        for i, w in enumerate(fleet))
    return (f'<svg width="{_LABEL_W + width}" height="{h + 4}" '
            f'viewBox="0 0 {_LABEL_W + width} {h + 4}" role="img" '
            'aria-label="fleet power">'
            f'<text x="0" y="16">{top:,.0f} W</text>'
            f'<polyline points="{pts}" fill="none" '
            'stroke="var(--accent)" stroke-width="1.5"/></svg>')


def _batch_table(recording: FlightRecording, limit: int = 12) -> str:
    b = recording.batches
    shared = [i for i in range(len(b["members"])) if b["members"][i] > 1]
    if not shared:
        return ""
    idle = [n["model"]["idle_watts"] for n in recording.meta["nodes"]]
    speed = [n["model"]["speed_factor"]
             for n in recording.meta["nodes"]]
    arrival = recording.queries["arrival"]

    def saved_joules(i: int) -> float:
        node = b["node"][i]
        if node is None:
            return 0.0
        watts = b["watts"][i]
        active = (watts - idle[node]) if watts is not None else 0.0
        return active * (b["raw_seconds"][i] - b["combined_seconds"][i]) \
            / speed[node]

    shared.sort(key=saved_joules, reverse=True)
    total = sum(saved_joules(i) for i in shared)
    rows = []
    for i in shared[:limit]:
        first = b["first"][i]
        held = b["release_at"][i] - arrival[first]
        rows.append(
            "<tr>"
            f'<td class="num">{i}</td>'
            f'<td>{_esc(recording.tenant_name(recording.queries["tenant"][first]))}</td>'
            f'<td class="num">{b["members"][i]}</td>'
            f'<td class="num">{held:.2f}</td>'
            f'<td>{_esc(b["reason"][i])}</td>'
            f'<td class="num">{b["raw_seconds"][i]:.2f}</td>'
            f'<td class="num">{b["combined_seconds"][i]:.2f}</td>'
            f'<td class="num">{saved_joules(i):,.0f}</td>'
            "</tr>")
    return (
        f'<h2>Held batches</h2><p class="sub">{len(shared)} shared '
        f'batch(es); estimated {total:,.0f} active J saved vs solo '
        'execution (top savers below)</p>'
        "<table><thead><tr><th>batch</th><th>tenant</th>"
        "<th>queries</th><th>held s</th><th>release</th>"
        "<th>raw s</th><th>shared s</th><th>est J saved</th>"
        "</tr></thead><tbody>" + "".join(rows) + "</tbody></table>")


def render_timeline(recording: FlightRecording,
                    title: Optional[str] = None,
                    width: int = 900,
                    slo_window_seconds: float = 60.0) -> str:
    """Render the whole operator console as one HTML string."""
    meta = recording.meta
    report = meta.get("report", {})
    monitor = SLOMonitor(recording, window_seconds=slo_window_seconds)
    rollup = node_rollup(recording)
    title = title or (f"flight recording — {meta['policy']} "
                      f"({meta['engine']})")
    css = _CSS.replace("%SERIES_LIGHT%", "\n".join(
        f"  --s{i + 1}: {c};" for i, c in enumerate(SERIES_LIGHT)))
    css = css.replace("%SERIES_DARK%", "\n".join(
        f"    --s{i + 1}: {c};" for i, c in enumerate(SERIES_DARK)))

    states = {}
    for s in recording.queries["state"]:
        states[s] = states.get(s, 0) + 1
    tiles = [
        ("engine", meta["engine"]),
        ("policy", meta["policy"]),
        ("queries", f"{recording.n_queries:,}"),
        ("completed", f"{states.get('done', 0):,}"),
        ("makespan", f"{recording.end:,.1f} s"),
        ("energy", f"{report.get('energy_joules', 0.0):,.0f} J"),
        ("SLO breached",
         ", ".join(t.tenant for t in monitor.tenants() if t.breached)
         or "none"),
    ]
    tiles_html = '<div class="tiles">' + "".join(
        f'<div class="tile"><div class="v">{_esc(v)}</div>'
        f'<div class="k">{_esc(k)}</div></div>' for k, v in tiles) \
        + "</div>"

    doc = [
        "<!doctype html><html><head><meta charset='utf-8'>",
        f"<title>{_esc(title)}</title><style>{css}</style></head><body>",
        f"<h1>{_esc(title)}</h1>",
        f'<p class="sub">{recording.n_nodes} node(s), '
        f'{len(meta["tenants"])} tenant(s), '
        f'{len(recording.events)} event(s)</p>',
        tiles_html,
        "<h2>Node timeline</h2>",
        _legend([(label, _STATE_FILL[s]) for s, label in _STATE_LABEL]),
        _node_lanes(recording, width),
        "<h2>QED hold windows</h2>",
        _legend([("deadline release", "var(--s1)"),
                 ("released full", "var(--s2)"),
                 ("end-of-run flush", "var(--s4)")]),
        _hold_lanes(recording, width),
        "<h2>Tenant SLO burn "
        f"(window {slo_window_seconds:.0f}s)</h2>",
        _burn_strips(monitor, width),
        "<h2>Fleet power</h2>",
        _power_strip(rollup, width),
        _batch_table(recording),
        "</body></html>",
    ]
    return "".join(doc)
