"""Entry point for ``python -m repro.flightrec``."""

import sys

from repro.flightrec.cli import main

if __name__ == "__main__":
    sys.exit(main())
