"""The benchmark-history record: one sweep point, frozen with context.

A :class:`BenchRecord` is the unit the observatory appends, compares,
and plots.  It is deliberately flat and JSON-safe: a metric map (the
simulated seconds/Joules plus the paper's derived efficiency metrics),
a counter map (the telemetry hooks' buffer/WAL/prefetch tallies), and
enough provenance — git SHA, spec hash, host fingerprint, timestamp —
to answer "*which commit* made Figure 2's scan more expensive?".

Only simulated quantities participate in regression gating; the host
wall clock is carried for context but policy-excluded (see
:mod:`repro.observatory.regression`).
"""

from __future__ import annotations

import datetime as _datetime
import functools
import platform
import subprocess
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence

SCHEMA_VERSION = 1

#: attribute names probed, in order, to find a report's work-unit count
_WORK_UNIT_ATTRS: tuple[tuple[str, str], ...] = (
    ("records_sorted", "record"),
    ("records_scanned", "record"),
    ("records", "record"),
    ("rows", "record"),
    ("queries_completed", "query"),
    ("transactions_committed", "transaction"),
    ("transactions", "transaction"),
    ("bytes_read", "byte"),
)


def extract_work_units(report: Any) -> tuple[float, str]:
    """Best-effort ``(count, unit)`` of work a report accomplished.

    Mirrors :func:`repro.runner.reports.report_metrics`: reports name
    their own workload quantum (queries for Figure 1, bytes for the
    Figure 2 scan, records for JouleSort); unknown shapes degrade to
    ``(0.0, "record")`` and the derived per-record metrics are simply
    omitted rather than divided by zero.
    """
    for attr, unit in _WORK_UNIT_ATTRS:
        value = getattr(report, attr, None)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            if value > 0:
                return float(value), unit
    return 0.0, "record"


def point_metrics(sim_seconds: float, joules: float,
                  records: float = 0.0,
                  host_seconds: float = 0.0) -> dict[str, float]:
    """The observatory's canonical metric map for one point.

    Derived metrics appear only when well-defined: ``watts`` needs
    simulated time, the per-record pair needs a work-unit count — so a
    report with no record notion still produces a comparable row.
    """
    metrics: dict[str, float] = {
        "sim_seconds": float(sim_seconds),
        "joules": float(joules),
        "host_seconds": float(host_seconds),
    }
    if sim_seconds > 0:
        metrics["watts"] = joules / sim_seconds
    if records > 0:
        metrics["records"] = float(records)
        if joules > 0:
            metrics["joules_per_record"] = joules / records
        if sim_seconds > 0 and joules > 0:
            rps = records / sim_seconds
            metrics["records_per_second"] = rps
            metrics["records_per_second_per_watt"] = \
                rps / (joules / sim_seconds)
    return metrics


def point_label(knobs: Mapping[str, Any],
                axes: Sequence[str]) -> str:
    """Stable human identity of a sweep point: its axis assignment.

    Only the *swept* knobs appear (fixed knobs are part of the spec
    hash), so the label survives default-knob additions; a sweep with
    no axes is the single point ``"defaults"``.
    """
    parts = [f"{name}={knobs[name]}" for name in sorted(axes)
             if name in knobs]
    return " ".join(parts) or "defaults"


@functools.lru_cache(maxsize=1)
def git_sha(short: bool = True) -> str:
    """The repo's current commit, or ``"unknown"`` outside a checkout."""
    cmd = ["git", "rev-parse", "--short" if short else "--verify", "HEAD"]
    try:
        out = subprocess.run(cmd, capture_output=True, text=True,
                             timeout=5.0)
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def host_info() -> dict[str, str]:
    """A small host fingerprint (context only, never compared)."""
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "machine": platform.machine(),
    }


def utc_now_iso() -> str:
    return _datetime.datetime.now(_datetime.timezone.utc).isoformat(
        timespec="seconds")


@dataclass
class BenchRecord:
    """One benchmark point's measurements plus provenance.

    ``seq`` is the record's position in its suite's history file; it is
    assigned by :meth:`HistoryStore.append` (constructing code leaves
    the default).  ``timelines`` optionally carries the traced run's
    downsampled per-device power step functions so the dashboard can
    plot them without re-running anything.
    """

    suite: str
    benchmark: str
    point: str = "defaults"
    metrics: dict[str, float] = field(default_factory=dict)
    counters: dict[str, float] = field(default_factory=dict)
    record_unit: str = "record"
    spec_hash: str = ""
    git_sha: str = "unknown"
    host: dict[str, str] = field(default_factory=dict)
    recorded_at: str = ""
    seq: int = -1
    timelines: list[dict[str, Any]] = field(default_factory=list)
    version: int = SCHEMA_VERSION

    def series_key(self) -> tuple[str, str]:
        """Longitudinal identity: records sharing it form one trend."""
        return (self.benchmark, self.point)

    def metric(self, name: str) -> Optional[float]:
        return self.metrics.get(name)

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": self.version,
            "suite": self.suite,
            "benchmark": self.benchmark,
            "point": self.point,
            "metrics": {k: v for k, v in sorted(self.metrics.items())},
            "counters": {k: v for k, v in sorted(self.counters.items())},
            "record_unit": self.record_unit,
            "spec_hash": self.spec_hash,
            "git_sha": self.git_sha,
            "host": {k: v for k, v in sorted(self.host.items())},
            "recorded_at": self.recorded_at,
            "seq": self.seq,
            "timelines": list(self.timelines),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BenchRecord":
        return cls(
            suite=data["suite"],
            benchmark=data["benchmark"],
            point=data.get("point", "defaults"),
            metrics=dict(data.get("metrics", {})),
            counters=dict(data.get("counters", {})),
            record_unit=data.get("record_unit", "record"),
            spec_hash=data.get("spec_hash", ""),
            git_sha=data.get("git_sha", "unknown"),
            host=dict(data.get("host", {})),
            recorded_at=data.get("recorded_at", ""),
            seq=data.get("seq", -1),
            timelines=list(data.get("timelines", [])),
            version=data.get("version", SCHEMA_VERSION),
        )
