"""repro.observatory: longitudinal benchmark history and regression gates.

The paper's thesis is that energy efficiency must be *tracked*, not
recomputed ad hoc — a number that evaporates when the process exits
cannot anchor a trend (§2.3's call for standardized EE benchmarks).
This package turns every benchmark and runner sweep into an
append-only, diffable time series:

* :class:`HistoryStore` persists one JSONL file per suite
  (``BENCH_<suite>.json``) of :class:`BenchRecord` rows — simulated
  seconds, Joules, Joules/record, records/s/W, telemetry counters,
  git SHA, spec hash, and host metadata per sweep point;
* :class:`Recorder` builds records from ``RunResult``/report objects,
  and :class:`ObservatorySink` does the same live off the runner's
  event stream (riding beside :class:`~repro.telemetry.TelemetrySink`);
* :func:`compare_store` selects a last-N-median baseline per metric
  and produces a typed :class:`RegressionReport` (simulated metrics
  default to exact-to-1e-9 tolerance; host wall-clock is recorded but
  never gated);
* :func:`render_dashboard` emits a self-contained HTML dashboard —
  per-series trend sparklines, per-device power timelines from
  recorded :class:`~repro.telemetry.TelemetryTrace` timelines, and a
  Joules-vs-records/s frontier chart mirroring Figure 1;
* ``python -m repro.observatory`` wires it into CI:
  ``record`` → ``compare`` → ``gate`` (nonzero exit on regression)
  → ``report``.
"""

from repro.observatory.history import (
    HISTORY_PREFIX,
    HistoryStore,
    history_filename,
    suite_of_filename,
)
from repro.observatory.record import (
    SCHEMA_VERSION,
    BenchRecord,
    extract_work_units,
    git_sha,
    host_info,
    point_label,
    point_metrics,
)
from repro.observatory.recorder import ObservatorySink, Recorder
from repro.observatory.regression import (
    DEFAULT_BASELINE_WINDOW,
    DEFAULT_POLICIES,
    MetricPolicy,
    RegressionFinding,
    RegressionReport,
    baseline_of,
    compare_records,
    compare_store,
)
from repro.observatory.dashboard import render_dashboard

__all__ = [
    "BenchRecord",
    "DEFAULT_BASELINE_WINDOW",
    "DEFAULT_POLICIES",
    "HISTORY_PREFIX",
    "HistoryStore",
    "MetricPolicy",
    "ObservatorySink",
    "Recorder",
    "RegressionFinding",
    "RegressionReport",
    "SCHEMA_VERSION",
    "baseline_of",
    "compare_records",
    "compare_store",
    "extract_work_units",
    "git_sha",
    "history_filename",
    "host_info",
    "point_label",
    "point_metrics",
    "render_dashboard",
    "suite_of_filename",
]
