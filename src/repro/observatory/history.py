"""The append-only suite history: one JSONL file per suite.

``BENCH_<suite>.json`` holds one canonical-JSON line per
:class:`~repro.observatory.record.BenchRecord`, appended in arrival
order and never rewritten — the bench trajectory is a ledger, not a
cache.  Appends are O(1) (open-append-close with an ``fsync``-free
line write; records are small), loads are tolerant (a torn final line
from a killed run reads as absent, matching the result cache's
corrupt-entry policy), and ``seq`` numbers records within their suite
so plots have a monotone x-axis even when timestamps collide.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Iterator, Optional

from repro.errors import ReproError
from repro.observatory.record import BenchRecord
from repro.runner.spec import canonical_json

HISTORY_PREFIX = "BENCH_"
HISTORY_SUFFIX = ".json"

_SUITE_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]*$")


class HistoryError(ReproError):
    """A history file or suite name is unusable."""


def history_filename(suite: str) -> str:
    """``"core"`` -> ``"BENCH_core.json"`` (validating the name)."""
    if not _SUITE_RE.match(suite):
        raise HistoryError(
            f"invalid suite name {suite!r}: use letters, digits, "
            "dot, dash, underscore")
    return f"{HISTORY_PREFIX}{suite}{HISTORY_SUFFIX}"


def suite_of_filename(name: str) -> Optional[str]:
    """Inverse of :func:`history_filename`; None for non-history files."""
    if not (name.startswith(HISTORY_PREFIX)
            and name.endswith(HISTORY_SUFFIX)):
        return None
    suite = name[len(HISTORY_PREFIX):-len(HISTORY_SUFFIX)]
    return suite if _SUITE_RE.match(suite) else None


class HistoryStore:
    """All suite histories under one directory (default: the repo root)."""

    def __init__(self, root: str | Path = "."):
        self.root = Path(root)

    def path(self, suite: str) -> Path:
        return self.root / history_filename(suite)

    def suites(self) -> list[str]:
        """Every suite with a history file, sorted."""
        if not self.root.is_dir():
            return []
        found = (suite_of_filename(p.name)
                 for p in self.root.glob(f"{HISTORY_PREFIX}*{HISTORY_SUFFIX}"))
        return sorted(s for s in found if s)

    # -- writing -----------------------------------------------------

    def append(self, record: BenchRecord) -> BenchRecord:
        """Append one record to its suite's ledger, assigning ``seq``.

        Returns the record (mutated with its assigned sequence number).
        """
        path = self.path(record.suite)
        self.root.mkdir(parents=True, exist_ok=True)
        record.seq = self._count_lines(path)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(canonical_json(record.to_dict()) + "\n")
        return record

    @staticmethod
    def _count_lines(path: Path) -> int:
        try:
            with open(path, "rb") as fh:
                return sum(1 for _ in fh)
        except OSError:
            return 0

    # -- reading -----------------------------------------------------

    def iter_records(self, suite: str) -> Iterator[BenchRecord]:
        """Records in append order; malformed lines are skipped."""
        path = self.path(suite)
        try:
            fh = open(path, encoding="utf-8")
        except OSError:
            return
        with fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    yield BenchRecord.from_dict(json.loads(line))
                except (json.JSONDecodeError, KeyError, TypeError):
                    continue

    def load(self, suite: str) -> list[BenchRecord]:
        return list(self.iter_records(suite))

    def series(self, suite: str
               ) -> dict[tuple[str, str], list[BenchRecord]]:
        """Suite records grouped into longitudinal series, each in
        append order, keyed by ``(benchmark, point)``."""
        grouped: dict[tuple[str, str], list[BenchRecord]] = {}
        for record in self.iter_records(suite):
            grouped.setdefault(record.series_key(), []).append(record)
        return dict(sorted(grouped.items()))

    def __len__(self) -> int:
        return sum(len(self.load(s)) for s in self.suites())
