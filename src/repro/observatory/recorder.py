"""Turning live results into history records.

Two producers feed the ledger:

* :class:`Recorder` — call-style: hand it a finished
  :class:`~repro.runner.runner.RunResult` (or a bare report object)
  and it appends one :class:`BenchRecord` per point.  This is what
  ``benchmarks/conftest.py`` and the ``observatory record`` CLI use.
* :class:`ObservatorySink` — event-style: an ordinary runner event
  sink (compose it with :class:`~repro.telemetry.TelemetrySink` or the
  printing sink via ``forward=``) that accumulates ``PointFinished`` /
  ``PointTraced`` events and appends the whole run on ``RunFinished``.

Both share the metric extraction in :mod:`repro.observatory.record`
and both downsample traced power timelines to a plot-friendly size
before storage — the ledger keeps trends, not raw traces.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Optional, Sequence

from repro.observatory.history import HistoryStore
from repro.observatory.record import (
    BenchRecord,
    extract_work_units,
    git_sha,
    host_info,
    point_label,
    point_metrics,
    utc_now_iso,
)

#: timeline samples kept per device inside a stored record — coarse on
#: purpose: the ledger accumulates forever, the dashboard plots small
RECORD_TIMELINE_SAMPLES = 64


def _resample(times: Sequence[float], values: Sequence[float],
              limit: int) -> tuple[list[float], list[float]]:
    """Evenly thin a step series to ``limit`` samples, keeping both
    endpoints (same policy as the telemetry collector's downsampler)."""
    n = len(times)
    if n <= limit:
        return list(times), list(values)
    step = (n - 1) / (limit - 1)
    idx = sorted({round(i * step) for i in range(limit)} | {0, n - 1})
    return [times[i] for i in idx], [values[i] for i in idx]


def timelines_of(trace: Any,
                 limit: int = RECORD_TIMELINE_SAMPLES) -> list[dict]:
    """A trace's device power timelines, downsampled for storage."""
    out = []
    for dev in getattr(trace, "devices", []):
        times, watts = _resample(dev.times, dev.watts, limit)
        out.append({
            "name": dev.name,
            "times": [round(t, 9) for t in times],
            "watts": [round(w, 9) for w in watts],
            "energy_joules": dev.energy_joules,
            "busy_seconds": dev.busy_seconds,
        })
    return out


class Recorder:
    """Builds and appends :class:`BenchRecord` rows for one suite."""

    def __init__(self, root: str | HistoryStore = ".",
                 suite: str = "core",
                 timeline_samples: int = RECORD_TIMELINE_SAMPLES):
        self.store = (root if isinstance(root, HistoryStore)
                      else HistoryStore(root))
        self.suite = suite
        self.timeline_samples = timeline_samples
        # provenance is computed once per recorder, not per record
        self._git_sha = git_sha()
        self._host = host_info()

    # -- record builders ---------------------------------------------

    def build(self, benchmark: str, *, point: str = "defaults",
              sim_seconds: float = 0.0, joules: float = 0.0,
              host_seconds: float = 0.0, report: Any = None,
              trace: Any = None, spec_hash: str = "") -> BenchRecord:
        records, unit = (extract_work_units(report)
                         if report is not None else (0.0, "record"))
        counters: dict[str, float] = {}
        timelines: list[dict] = []
        if trace is not None:
            counters = dict(trace.counters)
            timelines = timelines_of(trace, self.timeline_samples)
        return BenchRecord(
            suite=self.suite, benchmark=benchmark, point=point,
            metrics=point_metrics(sim_seconds, joules, records,
                                  host_seconds),
            counters=counters, record_unit=unit,
            spec_hash=spec_hash, git_sha=self._git_sha,
            host=dict(self._host), recorded_at=utc_now_iso(),
            timelines=timelines)

    def record_run(self, result: Any,
                   benchmark: Optional[str] = None) -> list[BenchRecord]:
        """Append one record per point of a finished ``RunResult``."""
        spec = result.spec
        axes = sorted(spec.sweep_axes())
        name = benchmark or spec.experiment
        spec_hash = spec.spec_hash()
        appended = []
        for p in result.points:
            record = self.build(
                name, point=point_label(p.knobs, axes),
                sim_seconds=p.sim_seconds, joules=p.joules,
                host_seconds=p.host_seconds, report=p.report,
                trace=p.telemetry, spec_hash=spec_hash)
            appended.append(self.store.append(record))
        return appended

    def record_report(self, benchmark: str, report: Any, *,
                      point: str = "defaults", host_seconds: float = 0.0,
                      trace: Any = None,
                      spec_hash: str = "") -> BenchRecord:
        """Append one record for a bare report object (no spec/run)."""
        from repro.runner.reports import report_metrics
        sim_seconds, joules = report_metrics(report)
        record = self.build(
            benchmark, point=point, sim_seconds=sim_seconds,
            joules=joules, host_seconds=host_seconds, report=report,
            trace=trace, spec_hash=spec_hash)
        return self.store.append(record)


class ObservatorySink:
    """Event sink that records a run into the ledger as it finishes.

    Rides the same event stream as the telemetry and printing sinks::

        sink = ObservatorySink(Recorder("histories", suite="ci"),
                               benchmark="fig2",
                               forward=TelemetrySink())
        Runner(trace=True, on_event=sink).run(spec)
        sink.appended        # the BenchRecords written

    Points accumulate from ``PointFinished``/``PointTraced`` and the
    ledger is written once, on ``RunFinished`` — the sweep-axis labels
    need every point's knobs, and a half-recorded run would poison the
    baseline window.
    """

    def __init__(self, recorder: Recorder,
                 benchmark: Optional[str] = None,
                 spec: Any = None,
                 forward: Optional[Callable[[Any], None]] = None):
        self.recorder = recorder
        self.benchmark = benchmark
        self.spec = spec
        self.forward = forward
        self.experiment: Optional[str] = None
        self.spec_hash: str = ""
        self.appended: list[BenchRecord] = []
        self._points: dict[int, dict[str, Any]] = {}
        self._traces: dict[int, Any] = {}
        self._reports: dict[int, Any] = {}

    def __call__(self, event: Any) -> None:
        from repro.runner.events import (
            PointFinished,
            PointTraced,
            RunFinished,
            RunStarted,
        )
        if isinstance(event, RunStarted):
            self.experiment = event.experiment
            self.spec_hash = event.spec_hash
            self._points.clear()
            self._traces.clear()
            self.appended = []
        elif isinstance(event, PointFinished):
            self._points[event.index] = {
                "knobs": dict(event.knobs),
                "sim_seconds": event.sim_seconds,
                "joules": event.joules,
                "host_seconds": event.host_seconds,
            }
        elif isinstance(event, PointTraced):
            self._traces[event.index] = event.trace
        elif isinstance(event, RunFinished):
            self._flush()
        if self.forward is not None:
            self.forward(event)

    def attach_report(self, index: int, report: Any) -> None:
        """Optionally supply a point's report so work-unit metrics
        (Joules/record, records/s/W) appear; events alone carry only
        seconds and Joules."""
        self._reports[index] = report

    def _flush(self) -> None:
        if self.spec is not None:
            axes = sorted(self.spec.sweep_axes())
        else:
            axes = self._varying_knobs()
        name = self.benchmark or self.experiment or "run"
        for index in sorted(self._points):
            info = self._points[index]
            record = self.recorder.build(
                name, point=point_label(info["knobs"], axes),
                sim_seconds=info["sim_seconds"],
                joules=info["joules"],
                host_seconds=info["host_seconds"],
                report=self._reports.get(index),
                trace=self._traces.get(index),
                spec_hash=self.spec_hash)
            self.appended.append(self.recorder.store.append(record))

    def _varying_knobs(self) -> list[str]:
        """Without a spec, infer the sweep axes: knobs whose values
        differ across the collected points."""
        if len(self._points) <= 1:
            return []
        seen: dict[str, set] = {}
        for info in self._points.values():
            for knob, value in info["knobs"].items():
                seen.setdefault(knob, set()).add(repr(value))
        return sorted(k for k, values in seen.items() if len(values) > 1)
