"""Noise-aware regression detection over the suite ledgers.

The engine answers one question per longitudinal series: *is the
latest record worse than its baseline?*  The baseline is the
**median of the last N prior records** per metric (median, not mean,
so one bad historical append cannot drag the reference; N defaults to
:data:`DEFAULT_BASELINE_WINDOW`).

Tolerances are per-metric :class:`MetricPolicy` objects.  Simulated
quantities are deterministic in this repo — parallel runs are
byte-identical to serial ones — so their default tolerance is *exact
to 1e-9 relative*; any drift means the physics changed.  Host
wall-clock metrics are inherently noisy and default to
``gate=False``: recorded, reported, never failing a build.  Metric
direction decides the verdict: more Joules is a regression, more
records/s/W is an improvement, and directionless quantities (counters,
record counts) flag any change as ``"changed"`` — which gates, since a
silently shifted buffer-hit count is exactly the kind of behavioural
drift the ledger exists to catch.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Mapping, Optional, Sequence

from repro.observatory.history import HistoryStore
from repro.observatory.record import BenchRecord

DEFAULT_BASELINE_WINDOW = 5

#: exact-for-floats default: simulated metrics must reproduce
EXACT_REL_TOL = 1e-9
EXACT_ABS_TOL = 1e-9

LOWER_IS_BETTER = "lower"
HIGHER_IS_BETTER = "higher"
EITHER = "either"

OK = "ok"
REGRESSION = "regression"
IMPROVEMENT = "improvement"
CHANGED = "changed"
NEW = "new"
MISSING = "missing"


@dataclass(frozen=True)
class MetricPolicy:
    """How one metric is compared.

    ``rel_tol``/``abs_tol`` bound the allowed drift (a value within
    either bound is ``ok``); ``direction`` classifies drift beyond the
    bound; ``gate=False`` keeps the metric in reports but out of the
    CI verdict (the host wall-clock opt-out).
    """

    rel_tol: float = EXACT_REL_TOL
    abs_tol: float = EXACT_ABS_TOL
    direction: str = EITHER
    gate: bool = True

    def widened(self, rel_tol: float) -> "MetricPolicy":
        return replace(self, rel_tol=rel_tol)


#: the built-in metric policies; unknown metrics fall back to exact /
#: directionless / gating (conservative: new metrics must reproduce)
DEFAULT_POLICIES: dict[str, MetricPolicy] = {
    "sim_seconds": MetricPolicy(direction=LOWER_IS_BETTER),
    "joules": MetricPolicy(direction=LOWER_IS_BETTER),
    "watts": MetricPolicy(direction=LOWER_IS_BETTER),
    "joules_per_record": MetricPolicy(direction=LOWER_IS_BETTER),
    "records": MetricPolicy(direction=EITHER),
    "records_per_second": MetricPolicy(direction=HIGHER_IS_BETTER),
    "records_per_second_per_watt": MetricPolicy(
        direction=HIGHER_IS_BETTER),
    # host wall-clock: real, noisy, and not this repo's claim — never
    # gate on it (opt back in with a custom policy map if you must)
    "host_seconds": MetricPolicy(rel_tol=math.inf, abs_tol=math.inf,
                                 direction=LOWER_IS_BETTER, gate=False),
}

FALLBACK_POLICY = MetricPolicy()


def policy_for(metric: str,
               policies: Optional[Mapping[str, MetricPolicy]] = None
               ) -> MetricPolicy:
    table = DEFAULT_POLICIES if policies is None else policies
    if metric.startswith("counter:"):
        return table.get(metric, table.get("counter:*", FALLBACK_POLICY))
    return table.get(metric, FALLBACK_POLICY)


def baseline_of(values: Sequence[float],
                window: int = DEFAULT_BASELINE_WINDOW) -> float:
    """Median of the last ``window`` values (the noise-robust anchor)."""
    if not values:
        raise ValueError("baseline needs at least one value")
    tail = list(values[-window:]) if window > 0 else list(values)
    return statistics.median(tail)


@dataclass(frozen=True)
class RegressionFinding:
    """One (series, metric) comparison outcome."""

    suite: str
    benchmark: str
    point: str
    metric: str
    baseline: Optional[float]
    current: Optional[float]
    verdict: str
    gate: bool = True

    @property
    def delta(self) -> float:
        if self.baseline is None or self.current is None:
            return 0.0
        return self.current - self.baseline

    @property
    def delta_pct(self) -> float:
        if (self.baseline is None or self.current is None
                or self.baseline == 0):
            return 0.0
        return (self.current - self.baseline) / abs(self.baseline) * 100.0

    @property
    def fails_gate(self) -> bool:
        return self.gate and self.verdict in (REGRESSION, CHANGED, MISSING)

    def to_dict(self) -> dict[str, Any]:
        return {
            "suite": self.suite,
            "benchmark": self.benchmark,
            "point": self.point,
            "metric": self.metric,
            "baseline": self.baseline,
            "current": self.current,
            "delta": self.delta,
            "delta_pct": self.delta_pct,
            "verdict": self.verdict,
            "gate": self.gate,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RegressionFinding":
        return cls(suite=data["suite"], benchmark=data["benchmark"],
                   point=data["point"], metric=data["metric"],
                   baseline=data.get("baseline"),
                   current=data.get("current"),
                   verdict=data["verdict"],
                   gate=data.get("gate", True))


@dataclass
class RegressionReport:
    """Every finding of one comparison pass, worst first."""

    findings: list[RegressionFinding] = field(default_factory=list)
    window: int = DEFAULT_BASELINE_WINDOW

    _SEVERITY = {REGRESSION: 0, CHANGED: 1, MISSING: 2,
                 IMPROVEMENT: 3, NEW: 4, OK: 5}

    def sort(self) -> None:
        self.findings.sort(key=lambda f: (
            self._SEVERITY.get(f.verdict, 9), f.suite, f.benchmark,
            f.point, f.metric))

    def regressions(self) -> list[RegressionFinding]:
        return [f for f in self.findings if f.fails_gate]

    def improvements(self) -> list[RegressionFinding]:
        return [f for f in self.findings if f.verdict == IMPROVEMENT]

    @property
    def has_regressions(self) -> bool:
        return bool(self.regressions())

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for f in self.findings:
            out[f.verdict] = out.get(f.verdict, 0) + 1
        return dict(sorted(out.items()))

    def summary(self) -> str:
        parts = [f"{n} {verdict}" for verdict, n in self.counts().items()]
        status = "FAIL" if self.has_regressions else "ok"
        return (f"{status}: {len(self.findings)} comparison(s)"
                + (f" — {', '.join(parts)}" if parts else ""))

    def rows(self) -> list[tuple]:
        """Table rows for the CLI (non-ok findings only)."""
        return [(f.verdict, f.suite, f.benchmark, f.point, f.metric,
                 "-" if f.baseline is None else f"{f.baseline:.6g}",
                 "-" if f.current is None else f"{f.current:.6g}",
                 f"{f.delta_pct:+.3f}%" if f.baseline else "-")
                for f in self.findings if f.verdict != OK]

    def to_dict(self) -> dict[str, Any]:
        return {
            "window": self.window,
            "has_regressions": self.has_regressions,
            "counts": self.counts(),
            "findings": [f.to_dict() for f in self.findings],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RegressionReport":
        return cls(findings=[RegressionFinding.from_dict(f)
                             for f in data.get("findings", [])],
                   window=data.get("window", DEFAULT_BASELINE_WINDOW))


def _within(policy: MetricPolicy, baseline: float, current: float) -> bool:
    drift = abs(current - baseline)
    return (drift <= policy.abs_tol
            or drift <= policy.rel_tol * abs(baseline))


def _classify(policy: MetricPolicy, baseline: float,
              current: float) -> str:
    if _within(policy, baseline, current):
        return OK
    if policy.direction == LOWER_IS_BETTER:
        return REGRESSION if current > baseline else IMPROVEMENT
    if policy.direction == HIGHER_IS_BETTER:
        return REGRESSION if current < baseline else IMPROVEMENT
    return CHANGED


def _series_values(history: Sequence[BenchRecord],
                   metric: str) -> list[Optional[float]]:
    counters = metric.startswith("counter:")
    name = metric[len("counter:"):] if counters else metric
    return [(r.counters if counters else r.metrics).get(name)
            for r in history]


def compare_records(history: Sequence[BenchRecord],
                    window: int = DEFAULT_BASELINE_WINDOW,
                    policies: Optional[Mapping[str, MetricPolicy]] = None
                    ) -> list[RegressionFinding]:
    """Compare a series' newest record against its own past.

    ``history`` is one series in append order; the last record is the
    candidate and the up-to-``window`` records before it feed the
    median baseline.  A series of one record yields ``new`` verdicts
    (nothing to compare — never a gate failure).
    """
    if not history:
        return []
    current = history[-1]
    prior = history[:-1]
    metric_names = sorted(
        {m for r in history for m in r.metrics}
        | {f"counter:{c}" for r in history for c in r.counters})
    findings = []
    for metric in metric_names:
        policy = policy_for(metric, policies)
        cur_value = _series_values([current], metric)[0]
        if not prior:
            findings.append(RegressionFinding(
                suite=current.suite, benchmark=current.benchmark,
                point=current.point, metric=metric, baseline=None,
                current=cur_value, verdict=NEW, gate=False))
            continue
        past = [v for v in _series_values(prior, metric)
                if v is not None]
        if not past:
            verdict, baseline = NEW, None
        elif cur_value is None:
            verdict, baseline = MISSING, baseline_of(past, window)
        else:
            baseline = baseline_of(past, window)
            verdict = _classify(policy, baseline, cur_value)
        findings.append(RegressionFinding(
            suite=current.suite, benchmark=current.benchmark,
            point=current.point, metric=metric, baseline=baseline,
            current=cur_value, verdict=verdict,
            gate=policy.gate and verdict != NEW))
    return findings


def compare_store(store: HistoryStore,
                  suites: Optional[Iterable[str]] = None,
                  window: int = DEFAULT_BASELINE_WINDOW,
                  policies: Optional[Mapping[str, MetricPolicy]] = None
                  ) -> RegressionReport:
    """Compare every series of the given suites (default: all)."""
    report = RegressionReport(window=window)
    names = list(suites) if suites is not None else store.suites()
    for suite in names:
        for _, history in store.series(suite).items():
            report.findings.extend(
                compare_records(history, window=window,
                                policies=policies))
    report.sort()
    return report
