"""``python -m repro.observatory`` — the regression-gate entry point.

Subcommands::

    record EXPERIMENT [--suite S] [--history DIR] [--benchmark NAME]
                      [--workers N] [--seed S] [--no-trace]
                      [--cache DIR | --no-cache] [--json] [--quiet]
                      [--<knob> value ...]     # append a run to the ledger
    compare [--suite S ...] [--history DIR] [--window N] [--json]
    gate    [--suite S ...] [--history DIR] [--window N] [--json]
    report  [--suite S ...] [--history DIR] [--out FILE]

``record`` executes an experiment through the runner (telemetry on by
default, so counters and power timelines land in the ledger) and
appends one :class:`BenchRecord` per sweep point to
``BENCH_<suite>.json``.  ``compare`` diffs every series' newest record
against its last-N-median baseline and prints the verdict table;
``gate`` is ``compare`` with a nonzero exit when any gated metric
regressed (the CI hook); ``report`` writes the self-contained HTML
dashboard.

Exit codes: 0 ok, 1 gate failure, 2 usage/runtime error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Optional, Sequence

from repro.core.report import format_table
from repro.cli import run_guarded
from repro.errors import ReproError

DEFAULT_HISTORY_DIR = "."
DEFAULT_SUITE = "core"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.observatory",
        description="Record benchmark history, detect regressions, "
                    "render the energy-trend dashboard.")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_history(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument("--history", default=None, metavar="DIR",
                         help="ledger directory (default "
                              f"{DEFAULT_HISTORY_DIR!r} or "
                              "$REPRO_HISTORY_DIR)")

    record = sub.add_parser(
        "record", help="run an experiment and append it to the ledger")
    record.add_argument("experiment", help="registered experiment name")
    add_history(record)
    record.add_argument("--suite", default=DEFAULT_SUITE,
                        help=f"ledger suite (default {DEFAULT_SUITE!r})")
    record.add_argument("--benchmark", default=None,
                        help="series name (default: the experiment)")
    record.add_argument("--workers", type=int, default=1)
    record.add_argument("--seed", type=int, default=None)
    record.add_argument("--no-trace", action="store_true",
                        help="skip telemetry capture (no counters or "
                             "power timelines in the record)")
    record.add_argument("--cache", default=None, metavar="DIR")
    record.add_argument("--no-cache", action="store_true")
    record.add_argument("--json", action="store_true", dest="as_json",
                        help="print the appended records as JSON")
    record.add_argument("--quiet", action="store_true")

    for name, help_text in (
            ("compare", "diff newest records against their baselines"),
            ("gate", "compare; exit 1 if any gated metric regressed")):
        cmd = sub.add_parser(name, help=help_text)
        add_history(cmd)
        cmd.add_argument("--suite", action="append", default=None,
                         help="suite(s) to compare (default: all)")
        cmd.add_argument("--window", type=int, default=None,
                         help="baseline window (last-N median, "
                              "default 5)")
        cmd.add_argument("--json", action="store_true",
                         dest="as_json",
                         help="print the RegressionReport as JSON")

    report = sub.add_parser(
        "report", help="write the self-contained HTML dashboard")
    add_history(report)
    report.add_argument("--suite", action="append", default=None)
    report.add_argument("--out", default="observatory.html",
                        metavar="FILE")
    report.add_argument("--title", default="repro.observatory")
    return parser


def _history_root(args: argparse.Namespace) -> str:
    if args.history is not None:
        return args.history
    return os.environ.get("REPRO_HISTORY_DIR", DEFAULT_HISTORY_DIR)


def _cmd_record(args: argparse.Namespace,
                extras: Sequence[str]) -> int:
    from repro.runner import Runner
    from repro.runner.cli import parse_knob_args
    from repro.runner.events import EventPrinter
    from repro.runner.registry import get_experiment
    from repro.runner.spec import ExperimentSpec
    from repro.observatory.recorder import Recorder

    knobs = parse_knob_args(extras)
    defn = get_experiment(args.experiment)
    spec_kwargs: dict[str, Any] = {"knobs": knobs,
                                   "profile": defn.profile}
    if args.seed is not None:
        spec_kwargs["seed"] = args.seed
    spec = ExperimentSpec(args.experiment, **spec_kwargs)
    cache: Any = (False if args.no_cache
                  else args.cache if args.cache is not None else True)
    on_event = None if args.quiet else EventPrinter()
    result = Runner(workers=args.workers, cache=cache,
                    on_event=on_event,
                    trace=not args.no_trace).run(spec)

    recorder = Recorder(_history_root(args), suite=args.suite)
    appended = recorder.record_run(result, benchmark=args.benchmark)
    if args.as_json:
        print(json.dumps([r.to_dict() for r in appended], indent=2,
                         sort_keys=True))
        return 0
    store_path = recorder.store.path(args.suite)
    print(format_table(
        ["seq", "benchmark", "point", "sim_seconds", "joules",
         "counters"],
        [(r.seq, r.benchmark, r.point,
          round(r.metrics.get("sim_seconds", 0.0), 4),
          round(r.metrics.get("joules", 0.0), 2), len(r.counters))
         for r in appended],
        title=f"appended to {store_path} [commit "
              f"{appended[0].git_sha if appended else '-'}]"))
    return 0


def _compare(args: argparse.Namespace):
    from repro.observatory.history import HistoryStore
    from repro.observatory.regression import (
        DEFAULT_BASELINE_WINDOW,
        compare_store,
    )
    store = HistoryStore(_history_root(args))
    window = (args.window if args.window is not None
              else DEFAULT_BASELINE_WINDOW)
    if window < 1:
        raise ReproError("--window must be >= 1")
    return compare_store(store, suites=args.suite, window=window)


def _print_report(report, as_json: bool) -> None:
    if as_json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        return
    rows = report.rows()
    if rows:
        print(format_table(
            ["verdict", "suite", "benchmark", "point", "metric",
             "baseline", "current", "delta"],
            rows, title="regression findings (non-ok)"))
    print(report.summary())


def _cmd_compare(args: argparse.Namespace) -> int:
    _print_report(_compare(args), args.as_json)
    return 0


def _cmd_gate(args: argparse.Namespace) -> int:
    report = _compare(args)
    _print_report(report, args.as_json)
    if report.has_regressions:
        print(f"gate: FAIL ({len(report.regressions())} gated "
              "metric(s) regressed)", file=sys.stderr)
        return 1
    print("gate: ok", file=sys.stderr)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.observatory.dashboard import render_dashboard
    from repro.observatory.history import HistoryStore
    from repro.observatory.regression import compare_store

    store = HistoryStore(_history_root(args))
    suites = args.suite if args.suite is not None else store.suites()
    regressions = compare_store(store, suites=suites) if suites else None
    html = render_dashboard(store, suites=suites, report=regressions,
                            title=args.title)
    with open(args.out, "w", encoding="utf-8") as fh:
        fh.write(html)
    n = sum(len(store.load(s)) for s in suites)
    print(f"wrote {args.out}: {len(suites)} suite(s), {n} record(s)")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args, extras = parser.parse_known_args(argv)
    def dispatch() -> int:
        if args.command == "record":
            return _cmd_record(args, extras)
        if extras:
            parser.error(f"unrecognized arguments: {' '.join(extras)}")
        if args.command == "compare":
            return _cmd_compare(args)
        if args.command == "gate":
            return _cmd_gate(args)
        return _cmd_report(args)

    return run_guarded(dispatch)


if __name__ == "__main__":
    sys.exit(main())
