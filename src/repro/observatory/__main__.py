"""Module entry point: ``python -m repro.observatory``."""

import sys

from repro.observatory.cli import main

sys.exit(main())
