"""The energy-trend dashboard: one self-contained HTML file.

``render_dashboard`` folds the suite ledgers into a static page —
no JavaScript, no external assets, just inline CSS and SVG — so the
report survives as a CI artifact and opens anywhere:

* **stat tiles**: suites / series / records / latest commit;
* **trend sparklines**: per longitudinal series, simulated Joules (and
  efficiency where defined) over append sequence;
* **device power timelines**: the step functions stored by the most
  recent *traced* record of each suite — §3.1's "where does the energy
  go" as a picture;
* **frontier chart**: Joules vs. records/s per series, the Figure 1
  trade-off restated over the whole catalog;
* optionally, the latest :class:`RegressionReport` as a verdict table.

Chart conventions follow the repo's viz ground rules: single-hue
sparklines, one categorical hue per device held in fixed slot order
with a legend and direct labels, a single y-axis per plot, values in
text ink rather than series color, and light/dark styling driven by
``prefers-color-scheme`` from one set of custom properties.
"""

from __future__ import annotations

import html
from typing import Any, Iterable, Mapping, Optional, Sequence

from repro.observatory.history import HistoryStore
from repro.observatory.record import BenchRecord
from repro.observatory.regression import RegressionReport

#: fixed categorical slot order (validated palette; devices take slots
#: in first-seen order and never re-map when a device disappears).
#: Public: the flight-recorder timeline console reuses these so every
#: HTML artifact the repo emits shares one palette.
SERIES_LIGHT = ("#2a78d6", "#eb6834", "#1baf7a", "#eda100",
                "#e87ba4", "#008300", "#4a3aa7", "#e34948")
SERIES_DARK = ("#3987e5", "#d95926", "#199e70", "#c98500",
               "#d55181", "#008300", "#9085e9", "#e66767")
#: deprecated aliases (pre-flightrec names)
_SERIES_LIGHT = SERIES_LIGHT
_SERIES_DARK = SERIES_DARK

_CSS = """
:root {
  color-scheme: light dark;
  --surface-1: #fcfcfb; --surface-2: #f4f3f1;
  --text-primary: #0b0b0b; --text-secondary: #52514e;
  --grid: #e4e2de; --accent: #2a78d6;
  --ok: #008300; --bad: #e34948; --warn: #eda100;
%SERIES_LIGHT%
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface-1: #1a1a19; --surface-2: #242422;
    --text-primary: #ffffff; --text-secondary: #c3c2b7;
    --grid: #383835; --accent: #3987e5;
    --ok: #00a300; --bad: #e66767; --warn: #c98500;
%SERIES_DARK%
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 24px; background: var(--surface-1);
  color: var(--text-primary);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 16px; margin: 28px 0 8px; }
h3 { font-size: 13px; font-weight: 600; margin: 12px 0 4px;
     color: var(--text-secondary); }
.sub { color: var(--text-secondary); margin-bottom: 20px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin: 16px 0; }
.tile {
  background: var(--surface-2); border-radius: 8px;
  padding: 12px 16px; min-width: 130px;
}
.tile .v { font-size: 22px; font-weight: 650; }
.tile .k { font-size: 12px; color: var(--text-secondary); }
.cards { display: flex; flex-wrap: wrap; gap: 12px; }
.card {
  background: var(--surface-2); border-radius: 8px; padding: 12px;
}
.card .name { font-size: 12px; font-weight: 600; }
.card .val  { font-size: 12px; color: var(--text-secondary); }
table { border-collapse: collapse; margin-top: 8px; }
th, td {
  text-align: left; padding: 4px 12px 4px 0; font-size: 13px;
  border-bottom: 1px solid var(--grid);
}
th { color: var(--text-secondary); font-weight: 600; }
td.num { font-variant-numeric: tabular-nums; }
.verdict-regression, .verdict-changed, .verdict-missing
  { color: var(--bad); font-weight: 600; }
.verdict-improvement { color: var(--ok); font-weight: 600; }
.verdict-new { color: var(--warn); }
.legend { display: flex; gap: 16px; flex-wrap: wrap;
          font-size: 12px; color: var(--text-secondary);
          margin: 4px 0 8px; }
.legend .swatch { display: inline-block; width: 10px; height: 10px;
                  border-radius: 3px; margin-right: 5px;
                  vertical-align: -1px; }
svg text { fill: var(--text-secondary); font-size: 10px;
           font-family: inherit; }
"""


def _esc(text: Any) -> str:
    return html.escape(str(text), quote=True)


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value == 0:
        return "0"
    if abs(value) >= 1000 or abs(value) < 0.01:
        return f"{value:.3g}"
    return f"{value:.2f}"


def _scale(values: Sequence[float], lo: float, hi: float
           ) -> list[float]:
    vmin, vmax = min(values), max(values)
    if vmax - vmin <= 0:
        return [(lo + hi) / 2.0 for _ in values]
    span = vmax - vmin
    return [lo + (v - vmin) / span * (hi - lo) for v in values]


def sparkline_svg(values: Sequence[float], width: int = 150,
                  height: int = 36,
                  color: str = "var(--accent)") -> str:
    """A trend sparkline: 2px line, endpoint dot, no axes."""
    if not values:
        return ""
    if len(values) == 1:
        values = [values[0], values[0]]
    xs = _scale(list(range(len(values))), 3, width - 5)
    ys = _scale(values, height - 4, 4)  # y grows downward
    pts = " ".join(f"{x:.1f},{y:.1f}" for x, y in zip(xs, ys))
    return (
        f'<svg width="{width}" height="{height}" role="img" '
        f'aria-label="trend of {len(values)} runs">'
        f'<polyline points="{pts}" fill="none" stroke="{color}" '
        f'stroke-width="2" stroke-linejoin="round" '
        f'stroke-linecap="round"/>'
        f'<circle cx="{xs[-1]:.1f}" cy="{ys[-1]:.1f}" r="3" '
        f'fill="{color}"/></svg>')


def timeline_svg(timelines: Sequence[Mapping[str, Any]],
                 width: int = 560, height: int = 170) -> str:
    """Per-device power step functions on one time axis, one y-axis."""
    series = [t for t in timelines if t.get("times") and t.get("watts")]
    if not series:
        return ""
    t_max = max(max(t["times"]) for t in series) or 1.0
    w_max = max(max(t["watts"]) for t in series) or 1.0
    left, right, top, bottom = 42, 10, 8, 22
    px = width - left - right
    py = height - top - bottom

    def x_of(t: float) -> float:
        return left + t / t_max * px

    def y_of(w: float) -> float:
        return top + (1.0 - w / w_max) * py

    parts = [f'<svg width="{width}" height="{height}" role="img" '
             f'aria-label="device power timelines">']
    # recessive grid: three horizontal rules + labels
    for frac in (0.0, 0.5, 1.0):
        y = y_of(w_max * frac)
        parts.append(f'<line x1="{left}" y1="{y:.1f}" x2="{width-right}"'
                     f' y2="{y:.1f}" stroke="var(--grid)"'
                     f' stroke-width="1"/>')
        parts.append(f'<text x="{left-6}" y="{y+3:.1f}"'
                     f' text-anchor="end">{_fmt(w_max*frac)}</text>')
    parts.append(f'<text x="{left}" y="{height-6}">0 s</text>')
    parts.append(f'<text x="{width-right}" y="{height-6}"'
                 f' text-anchor="end">{_fmt(t_max)} s</text>')
    for slot, dev in enumerate(series):
        color = f"var(--s{slot % len(_SERIES_LIGHT) + 1})"
        pts = []
        prev_y = None
        for t, w in zip(dev["times"], dev["watts"]):
            x, y = x_of(t), y_of(w)
            if prev_y is not None:          # step, not slope
                pts.append(f"{x:.1f},{prev_y:.1f}")
            pts.append(f"{x:.1f},{y:.1f}")
            prev_y = y
        if prev_y is not None:
            pts.append(f"{width-right:.1f},{prev_y:.1f}")
        parts.append(f'<polyline points="{" ".join(pts)}" fill="none" '
                     f'stroke="{color}" stroke-width="2"/>')
        # direct label at the series' last level, in text ink
        parts.append(f'<text x="{width-right-2}" '
                     f'y="{(prev_y or top)-4:.1f}" text-anchor="end">'
                     f'{_esc(dev["name"])}</text>')
    parts.append("</svg>")
    return "".join(parts)


def frontier_svg(points: Sequence[tuple[str, float, float]],
                 width: int = 560, height: int = 220) -> str:
    """Joules (y) vs records/s (x): the Figure 1 trade-off restated.

    ``points`` are ``(label, records_per_second, joules)``; every dot
    is the same accent hue with a direct label — identity never rides
    on color here (a scatter is an all-pairs chart).
    """
    usable = [(n, x, y) for n, x, y in points if x > 0 and y > 0]
    if not usable:
        return ""
    left, right, top, bottom = 56, 14, 10, 30
    xs = _scale([x for _, x, _ in usable], left, width - right)
    ys = _scale([y for _, _, y in usable], height - bottom, top)
    x_lo = min(x for _, x, _ in usable)
    x_hi = max(x for _, x, _ in usable)
    y_lo = min(y for _, _, y in usable)
    y_hi = max(y for _, _, y in usable)
    parts = [f'<svg width="{width}" height="{height}" role="img" '
             f'aria-label="energy vs throughput frontier">']
    parts.append(f'<line x1="{left}" y1="{top}" x2="{left}" '
                 f'y2="{height-bottom}" stroke="var(--grid)"/>')
    parts.append(f'<line x1="{left}" y1="{height-bottom}" '
                 f'x2="{width-right}" y2="{height-bottom}" '
                 f'stroke="var(--grid)"/>')
    parts.append(f'<text x="{left-6}" y="{height-bottom}" '
                 f'text-anchor="end">{_fmt(y_lo)}</text>')
    parts.append(f'<text x="{left-6}" y="{top+8}" text-anchor="end">'
                 f'{_fmt(y_hi)}</text>')
    parts.append(f'<text x="{left}" y="{height-8}">{_fmt(x_lo)}</text>')
    parts.append(f'<text x="{width-right}" y="{height-8}" '
                 f'text-anchor="end">{_fmt(x_hi)}</text>')
    parts.append(f'<text x="{width-right}" y="{height-bottom-6}" '
                 f'text-anchor="end">records/s →</text>')
    parts.append(f'<text x="{left+4}" y="{top+8}">Joules ↑</text>')
    for (name, _, _), x, y in zip(usable, xs, ys):
        parts.append(f'<circle cx="{x:.1f}" cy="{y:.1f}" r="4" '
                     f'fill="var(--accent)" stroke="var(--surface-1)" '
                     f'stroke-width="2"><title>{_esc(name)}</title>'
                     f'</circle>')
        parts.append(f'<text x="{x+7:.1f}" y="{y+3:.1f}">'
                     f'{_esc(name)}</text>')
    parts.append("</svg>")
    return "".join(parts)


# -- page assembly ---------------------------------------------------

#: the sparkline metric per card, in preference order
_TREND_METRICS = ("joules", "sim_seconds")


def _series_card(key: tuple[str, str],
                 history: Sequence[BenchRecord]) -> str:
    benchmark, point = key
    metric = next((m for m in _TREND_METRICS
                   if any(m in r.metrics for r in history)), None)
    if metric is None:
        # no preferred metric: fall back to any recorded metric so
        # every suite renders a trend without per-suite wiring
        seen = sorted({m for r in history for m in r.metrics})
        if not seen:
            return ""
        metric = seen[0]
    values = [r.metrics[metric] for r in history if metric in r.metrics]
    latest = values[-1]
    eff = history[-1].metrics.get("records_per_second_per_watt")
    eff_txt = (f" · {_fmt(eff)} rec/s/W" if eff is not None else "")
    return (
        '<div class="card">'
        f'<div class="name">{_esc(benchmark)} · {_esc(point)}</div>'
        f'{sparkline_svg(values)}'
        f'<div class="val">{_esc(metric)}: {_fmt(latest)}'
        f'{eff_txt} · {len(history)} run(s)</div>'
        '</div>')


def _latest_timelines(records: Sequence[BenchRecord]
                      ) -> Optional[BenchRecord]:
    for record in reversed(records):
        if record.timelines:
            return record
    return None


def _regression_table(report: RegressionReport) -> str:
    rows = report.rows()
    if not rows:
        return ('<p class="sub">No deviations: every gated metric '
                'reproduced its baseline.</p>')
    cells = []
    for verdict, suite, bench, point, metric, base, cur, pct in rows:
        cells.append(
            f'<tr><td class="verdict-{_esc(verdict)}">{_esc(verdict)}'
            f'</td><td>{_esc(suite)}</td><td>{_esc(bench)}</td>'
            f'<td>{_esc(point)}</td><td>{_esc(metric)}</td>'
            f'<td class="num">{_esc(base)}</td>'
            f'<td class="num">{_esc(cur)}</td>'
            f'<td class="num">{_esc(pct)}</td></tr>')
    return ('<table><tr><th>verdict</th><th>suite</th><th>benchmark'
            '</th><th>point</th><th>metric</th><th>baseline</th>'
            '<th>current</th><th>Δ%</th></tr>'
            + "".join(cells) + "</table>")


def _device_legend(timelines: Sequence[Mapping[str, Any]]) -> str:
    if len(timelines) < 2:
        return ""
    items = []
    for slot, dev in enumerate(timelines):
        color = f"var(--s{slot % len(_SERIES_LIGHT) + 1})"
        items.append(f'<span><span class="swatch" '
                     f'style="background:{color}"></span>'
                     f'{_esc(dev["name"])}</span>')
    return f'<div class="legend">{"".join(items)}</div>'


def render_dashboard(store: HistoryStore,
                     suites: Optional[Iterable[str]] = None,
                     report: Optional[RegressionReport] = None,
                     title: str = "repro.observatory") -> str:
    """The whole ledger as one self-contained HTML page."""
    names = list(suites) if suites is not None else store.suites()
    all_series: dict[str, dict[tuple[str, str],
                               list[BenchRecord]]] = {}
    for suite in names:
        series = store.series(suite)
        if series:
            all_series[suite] = series

    n_series = sum(len(s) for s in all_series.values())
    n_records = sum(len(h) for s in all_series.values()
                    for h in s.values())
    latest_sha = "-"
    latest_at = ""
    for series in all_series.values():
        for history in series.values():
            record = history[-1]
            if record.recorded_at >= latest_at:
                latest_at = record.recorded_at
                latest_sha = record.git_sha

    series_css_light = "\n".join(
        f"  --s{i+1}: {c};" for i, c in enumerate(_SERIES_LIGHT))
    series_css_dark = "\n".join(
        f"    --s{i+1}: {c};" for i, c in enumerate(_SERIES_DARK))
    css = (_CSS.replace("%SERIES_LIGHT%", series_css_light)
               .replace("%SERIES_DARK%", series_css_dark))

    body = [f"<h1>{_esc(title)}</h1>",
            '<div class="sub">Longitudinal benchmark history — '
            'simulated seconds, Joules, and efficiency per suite, '
            'with regression verdicts.</div>']
    body.append(
        '<div class="tiles">'
        + "".join(
            f'<div class="tile"><div class="v">{_esc(v)}</div>'
            f'<div class="k">{_esc(k)}</div></div>'
            for k, v in (("suites", len(all_series)),
                         ("series", n_series),
                         ("records", n_records),
                         ("latest commit", latest_sha)))
        + "</div>")

    if report is not None:
        body.append("<h2>Regression verdicts</h2>")
        body.append(f'<p class="sub">{_esc(report.summary())}</p>')
        body.append(_regression_table(report))

    for suite, series in all_series.items():
        body.append(f"<h2>Suite: {_esc(suite)}</h2>")
        cards = [_series_card(key, history)
                 for key, history in series.items()]
        body.append('<div class="cards">'
                    + "".join(c for c in cards if c) + "</div>")

        traced = _latest_timelines(
            [r for history in series.values() for r in history])
        if traced is not None:
            body.append(f"<h3>Device power — {_esc(traced.benchmark)} "
                        f"· {_esc(traced.point)} "
                        f"(commit {_esc(traced.git_sha)})</h3>")
            body.append(_device_legend(traced.timelines))
            body.append(timeline_svg(traced.timelines))

        frontier = [
            (f"{bench} · {point}",
             history[-1].metrics.get("records_per_second", 0.0),
             history[-1].metrics.get("joules", 0.0))
            for (bench, point), history in series.items()]
        chart = frontier_svg(frontier)
        if chart:
            body.append("<h3>Energy vs. throughput frontier "
                        "(latest run per series)</h3>")
            body.append(chart)

    if not all_series:
        body.append('<p class="sub">No history recorded yet — run '
                    '<code>python -m repro.observatory record'
                    '</code>.</p>')

    return ("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
            "<meta charset=\"utf-8\">\n"
            "<meta name=\"viewport\" "
            "content=\"width=device-width, initial-scale=1\">\n"
            f"<title>{_esc(title)}</title>\n"
            f"<style>{css}</style>\n</head>\n<body>\n"
            + "\n".join(body)
            + "\n</body>\n</html>\n")
