"""Cooperative (shared) scans: work sharing across queries (paper §5.2).

"Techniques that enable and encourage work sharing across queries will
become increasingly attractive."  When several concurrent queries scan
the same table, one *leader* drives the physical pass while the
*followers* piggyback on its I/O, paying only their own CPU — the
cooperative-scan design of MonetDB/X100 and Blink, here with an energy
meter attached.

:class:`SharedScanSession` rewrites a batch of plan builders so that
exactly one scan of each shared table charges I/O, then runs the whole
batch concurrently on the simulated hardware.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.errors import ExecutionError
from repro.relational.executor import Executor, QueryResult
from repro.relational.operators import Operator, TableScan

PlanBuilder = Callable[[], Operator]


def _scans_of(root: Operator) -> list[TableScan]:
    out = []
    if isinstance(root, TableScan):
        out.append(root)
    for child in root.children():
        out.extend(_scans_of(child))
    return out


class SharedScanSession:
    """Run a batch of queries with shared table passes."""

    def __init__(self, executor: Executor) -> None:
        self.executor = executor
        #: table names whose pass already has a leader in this batch
        self._led_tables: set[str] = set()

    def _mark_shared(self, root: Operator) -> int:
        """Demote this plan's scans of already-led tables to followers.

        Returns how many scans were demoted.  The first plan to scan a
        table becomes (stays) its leader.
        """
        demoted = 0
        for scan in _scans_of(root):
            if scan.shared_pass:
                continue
            if scan.table.name in self._led_tables:
                scan.shared_pass = True
                demoted += 1
            else:
                self._led_tables.add(scan.table.name)
        return demoted

    def run_batch(self, builders: Sequence[PlanBuilder]
                  ) -> list[QueryResult]:
        """Execute all plans concurrently with shared passes."""
        if not builders:
            raise ExecutionError("empty query batch")
        sim = self.executor.ctx.sim
        self._led_tables.clear()
        plans = []
        for builder in builders:
            plan = builder()
            self._mark_shared(plan)
            plans.append(plan)
        processes = [sim.spawn(self.executor.run_process(plan),
                               name=f"shared-q{i}")
                     for i, plan in enumerate(plans)]
        return sim.run(until=sim.all_of(processes))


def run_independently(executor: Executor,
                      builders: Sequence[PlanBuilder]
                      ) -> list[QueryResult]:
    """The baseline: every query performs its own physical pass,
    still running concurrently on the shared hardware."""
    if not builders:
        raise ExecutionError("empty query batch")
    sim = executor.ctx.sim
    processes = [sim.spawn(executor.run_process(builder()),
                           name=f"indep-q{i}")
                 for i, builder in enumerate(builders)]
    return sim.run(until=sim.all_of(processes))
