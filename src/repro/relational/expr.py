"""Typed expression trees with per-evaluation CPU-cycle costs.

Every node knows how to evaluate itself against a tuple (given a
column-name -> position layout) and how many CPU cycles one evaluation
costs — the executor charges those cycles to the simulated CPU, and the
optimizer's cost model reuses the same numbers.
"""

from __future__ import annotations

import operator as _op
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.errors import ExpressionError

Layout = Mapping[str, int]

# Cycle costs per node evaluation; deliberately simple, in the spirit of
# "simple models for device access times work well in practice" (§4.1).
CYCLES_COLUMN_REF = 2.0
CYCLES_LITERAL = 0.0
CYCLES_COMPARE = 4.0
CYCLES_ARITHMETIC = 3.0
CYCLES_BOOL = 2.0
CYCLES_BETWEEN = 6.0
CYCLES_IN_PER_ITEM = 1.5
CYCLES_LIKE_PER_CHAR = 0.5


class Expr:
    """Base expression node."""

    def evaluate(self, row: Sequence[Any], layout: Layout) -> Any:
        """Value of this expression for one tuple."""
        raise NotImplementedError

    def cycles(self) -> float:
        """CPU cycles one evaluation costs (recursive)."""
        raise NotImplementedError

    def columns(self) -> set[str]:
        """Names of all columns the expression references."""
        raise NotImplementedError

    # -- sugar for building predicates ---------------------------------------
    def __eq__(self, other):  # type: ignore[override]
        return Comparison("=", self, _wrap(other))

    def __ne__(self, other):  # type: ignore[override]
        return Comparison("!=", self, _wrap(other))

    def __lt__(self, other):
        return Comparison("<", self, _wrap(other))

    def __le__(self, other):
        return Comparison("<=", self, _wrap(other))

    def __gt__(self, other):
        return Comparison(">", self, _wrap(other))

    def __ge__(self, other):
        return Comparison(">=", self, _wrap(other))

    def __add__(self, other):
        return Arithmetic("+", self, _wrap(other))

    def __sub__(self, other):
        return Arithmetic("-", self, _wrap(other))

    def __mul__(self, other):
        return Arithmetic("*", self, _wrap(other))

    def __truediv__(self, other):
        return Arithmetic("/", self, _wrap(other))

    def __and__(self, other):
        return BoolOp("and", [self, _wrap(other)])

    def __or__(self, other):
        return BoolOp("or", [self, _wrap(other)])

    def __invert__(self):
        return BoolOp("not", [self])

    def __hash__(self):  # keep Expr usable in sets despite __eq__ override
        return id(self)

    def __bool__(self):
        raise ExpressionError(
            "expressions are not truthy; use & | ~ to combine predicates")


def _wrap(value: Any) -> Expr:
    return value if isinstance(value, Expr) else Literal(value)


class ColumnRef(Expr):
    """Reference to a column of the input tuple, by name."""

    def __init__(self, name: str) -> None:
        if not name:
            raise ExpressionError("column name cannot be empty")
        self.name = name

    def evaluate(self, row: Sequence[Any], layout: Layout) -> Any:
        try:
            return row[layout[self.name]]
        except KeyError:
            raise ExpressionError(
                f"column {self.name!r} not in layout {sorted(layout)}"
            ) from None

    def cycles(self) -> float:
        return CYCLES_COLUMN_REF

    def columns(self) -> set[str]:
        return {self.name}

    def __repr__(self) -> str:
        return f"col({self.name})"


def col(name: str) -> ColumnRef:
    """Shorthand constructor: ``col("l_quantity") < 24``."""
    return ColumnRef(name)


class Literal(Expr):
    """A constant."""

    def __init__(self, value: Any) -> None:
        self.value = value

    def evaluate(self, row: Sequence[Any], layout: Layout) -> Any:
        return self.value

    def cycles(self) -> float:
        return CYCLES_LITERAL

    def columns(self) -> set[str]:
        return set()

    def __repr__(self) -> str:
        return f"lit({self.value!r})"


_COMPARATORS: dict[str, Callable[[Any, Any], bool]] = {
    "=": _op.eq, "!=": _op.ne, "<": _op.lt,
    "<=": _op.le, ">": _op.gt, ">=": _op.ge,
}


class Comparison(Expr):
    """Binary comparison; NULL operands compare to NULL (falsy)."""

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        if op not in _COMPARATORS:
            raise ExpressionError(f"unknown comparator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, row: Sequence[Any], layout: Layout) -> Any:
        lhs = self.left.evaluate(row, layout)
        rhs = self.right.evaluate(row, layout)
        if lhs is None or rhs is None:
            return None
        return _COMPARATORS[self.op](lhs, rhs)

    def cycles(self) -> float:
        return CYCLES_COMPARE + self.left.cycles() + self.right.cycles()

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


_ARITHMETIC: dict[str, Callable[[Any, Any], Any]] = {
    "+": _op.add, "-": _op.sub, "*": _op.mul, "/": _op.truediv,
}


class Arithmetic(Expr):
    """Binary arithmetic; NULL-propagating."""

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        if op not in _ARITHMETIC:
            raise ExpressionError(f"unknown arithmetic operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, row: Sequence[Any], layout: Layout) -> Any:
        lhs = self.left.evaluate(row, layout)
        rhs = self.right.evaluate(row, layout)
        if lhs is None or rhs is None:
            return None
        if self.op == "/" and rhs == 0:
            raise ExpressionError("division by zero")
        return _ARITHMETIC[self.op](lhs, rhs)

    def cycles(self) -> float:
        return CYCLES_ARITHMETIC + self.left.cycles() + self.right.cycles()

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class BoolOp(Expr):
    """AND / OR / NOT with SQL-ish three-valued NULL handling."""

    def __init__(self, op: str, operands: Sequence[Expr]) -> None:
        if op not in ("and", "or", "not"):
            raise ExpressionError(f"unknown boolean operator {op!r}")
        if op == "not" and len(operands) != 1:
            raise ExpressionError("NOT takes exactly one operand")
        if op != "not" and len(operands) < 2:
            raise ExpressionError(f"{op.upper()} needs >= 2 operands")
        self.op = op
        self.operands = list(operands)

    def evaluate(self, row: Sequence[Any], layout: Layout) -> Any:
        if self.op == "not":
            value = self.operands[0].evaluate(row, layout)
            return None if value is None else not value
        saw_null = False
        for operand in self.operands:
            value = operand.evaluate(row, layout)
            if value is None:
                saw_null = True
            elif self.op == "and" and not value:
                return False
            elif self.op == "or" and value:
                return True
        if saw_null:
            return None
        return self.op == "and"

    def cycles(self) -> float:
        return CYCLES_BOOL * len(self.operands) + sum(
            o.cycles() for o in self.operands)

    def columns(self) -> set[str]:
        out: set[str] = set()
        for operand in self.operands:
            out |= operand.columns()
        return out

    def __repr__(self) -> str:
        if self.op == "not":
            return f"not({self.operands[0]!r})"
        joiner = f" {self.op} "
        return "(" + joiner.join(repr(o) for o in self.operands) + ")"


class Between(Expr):
    """``low <= expr <= high`` in one node."""

    def __init__(self, value: Expr, low: Any, high: Any) -> None:
        self.value = value
        self.low = _wrap(low)
        self.high = _wrap(high)

    def evaluate(self, row: Sequence[Any], layout: Layout) -> Any:
        v = self.value.evaluate(row, layout)
        lo = self.low.evaluate(row, layout)
        hi = self.high.evaluate(row, layout)
        if v is None or lo is None or hi is None:
            return None
        return lo <= v <= hi

    def cycles(self) -> float:
        return (CYCLES_BETWEEN + self.value.cycles()
                + self.low.cycles() + self.high.cycles())

    def columns(self) -> set[str]:
        return (self.value.columns() | self.low.columns()
                | self.high.columns())

    def __repr__(self) -> str:
        return f"between({self.value!r}, {self.low!r}, {self.high!r})"


class InList(Expr):
    """Membership in a literal list."""

    def __init__(self, value: Expr, items: Iterable[Any]) -> None:
        self.value = value
        self.items = frozenset(items)
        if not self.items:
            raise ExpressionError("IN list cannot be empty")

    def evaluate(self, row: Sequence[Any], layout: Layout) -> Any:
        v = self.value.evaluate(row, layout)
        if v is None:
            return None
        return v in self.items

    def cycles(self) -> float:
        return CYCLES_IN_PER_ITEM * len(self.items) + self.value.cycles()

    def columns(self) -> set[str]:
        return self.value.columns()

    def __repr__(self) -> str:
        return f"in({self.value!r}, {sorted(self.items)!r})"


class Case(Expr):
    """``CASE WHEN cond THEN value ... ELSE default END``.

    Conditions are evaluated in order; the first true branch wins.
    """

    def __init__(self, branches: Sequence[tuple[Expr, Any]],
                 default: Any = None) -> None:
        if not branches:
            raise ExpressionError("CASE needs at least one WHEN branch")
        self.branches = [(cond, _wrap(value)) for cond, value in branches]
        self.default = _wrap(default)

    def evaluate(self, row: Sequence[Any], layout: Layout) -> Any:
        for condition, value in self.branches:
            if condition.evaluate(row, layout) is True:
                return value.evaluate(row, layout)
        return self.default.evaluate(row, layout)

    def cycles(self) -> float:
        # expected cost: half the branches tested, one value produced
        test_cost = sum(c.cycles() for c, _ in self.branches) / 2.0
        value_cost = max((v.cycles() for _, v in self.branches),
                         default=0.0)
        return CYCLES_BOOL + test_cost + value_cost

    def columns(self) -> set[str]:
        out = self.default.columns()
        for condition, value in self.branches:
            out |= condition.columns() | value.columns()
        return out

    def __repr__(self) -> str:
        parts = " ".join(f"when {c!r} then {v!r}"
                         for c, v in self.branches)
        return f"case({parts} else {self.default!r})"


class Like(Expr):
    """Simple string matching: prefix, suffix, or substring.

    Supports the three common shapes ``abc%``, ``%abc`` and ``%abc%``;
    full LIKE automata are out of scope.
    """

    def __init__(self, value: Expr, pattern: str) -> None:
        if not pattern:
            raise ExpressionError("empty LIKE pattern")
        self.value = value
        self.pattern = pattern
        body = pattern.strip("%")
        if "%" in body:
            raise ExpressionError(
                f"unsupported LIKE pattern {pattern!r}; "
                "only prefix/suffix/substring shapes")
        if pattern.startswith("%") and pattern.endswith("%"):
            self._match = lambda s: body in s
        elif pattern.endswith("%"):
            self._match = lambda s: s.startswith(body)
        elif pattern.startswith("%"):
            self._match = lambda s: s.endswith(body)
        else:
            self._match = lambda s: s == body

    def evaluate(self, row: Sequence[Any], layout: Layout) -> Any:
        v = self.value.evaluate(row, layout)
        if v is None:
            return None
        if not isinstance(v, str):
            raise ExpressionError(f"LIKE applied to non-string {v!r}")
        return self._match(v)

    def cycles(self) -> float:
        return CYCLES_LIKE_PER_CHAR * len(self.pattern) + self.value.cycles()

    def columns(self) -> set[str]:
        return self.value.columns()

    def __repr__(self) -> str:
        return f"like({self.value!r}, {self.pattern!r})"


def fold_constants(expr: Expr) -> Expr:
    """Pre-evaluate constant subtrees (the optimizer's cheapest rewrite).

    Any subtree referencing no columns is evaluated once and replaced by
    a :class:`Literal`, so per-tuple evaluation skips it.  AND/OR trees
    are additionally short-circuited when a folded operand decides them.
    """
    if isinstance(expr, (ColumnRef, Literal)):
        return expr
    if not expr.columns():
        try:
            return Literal(expr.evaluate((), {}))
        except ExpressionError:
            return expr  # e.g. division by zero: leave it to runtime
    if isinstance(expr, Comparison):
        return Comparison(expr.op, fold_constants(expr.left),
                          fold_constants(expr.right))
    if isinstance(expr, Arithmetic):
        return Arithmetic(expr.op, fold_constants(expr.left),
                          fold_constants(expr.right))
    if isinstance(expr, BoolOp):
        if expr.op == "not":
            return BoolOp("not", [fold_constants(expr.operands[0])])
        folded = [fold_constants(o) for o in expr.operands]
        kept: list[Expr] = []
        for operand in folded:
            if isinstance(operand, Literal):
                value = operand.value
                if expr.op == "and" and value is False:
                    return Literal(False)
                if expr.op == "or" and value is True:
                    return Literal(True)
                if value is True and expr.op == "and":
                    continue  # neutral element
                if value is False and expr.op == "or":
                    continue
            kept.append(operand)
        if not kept:
            return Literal(expr.op == "and")
        if len(kept) == 1:
            return kept[0]
        return BoolOp(expr.op, kept)
    if isinstance(expr, Between):
        return Between(fold_constants(expr.value),
                       fold_constants(expr.low),
                       fold_constants(expr.high))
    if isinstance(expr, Case):
        return Case([(fold_constants(c), fold_constants(v))
                     for c, v in expr.branches],
                    default=fold_constants(expr.default))
    return expr


def make_layout(names: Sequence[str]) -> dict[str, int]:
    """Build a name -> position mapping, rejecting duplicates."""
    layout = {name: i for i, name in enumerate(names)}
    if len(layout) != len(names):
        raise ExpressionError(f"duplicate column names in {names}")
    return layout
