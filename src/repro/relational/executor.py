"""Query execution: evaluate for real, replay for time and energy.

Phase 1 (*evaluate*) runs the operator tree over the stored tuples and
collects per-pipeline costs.  Phase 2 (*replay*) turns each pipeline
into simulation processes:

* one producer per I/O request, streaming chunks from its RAID array;
* one CPU consumer executing the pipeline's cycles chunk by chunk;
* a bounded prefetch window (default 2 chunks) between them.

This reproduces the overlap behaviour Figure 2 depends on: a pipeline
takes ``max(io_time, cpu_time)`` plus one chunk of latency, I/O-bound
scans hide their CPU, and CPU-bound compressed scans hide their I/O.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.errors import ExecutionError
from repro.relational.operators.base import (
    CostCollector,
    CostParameters,
    Operator,
    PipelineCost,
)
from repro.sim.events import Event
from repro.sim.resources import Resource
from repro.telemetry.context import current_collector
from repro.units import MIB

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.server import Server
    from repro.sim.engine import Simulation


@dataclass
class ExecutionContext:
    """Everything a query needs to run on a simulated server."""

    sim: "Simulation"
    server: "Server"
    params: CostParameters = field(default_factory=CostParameters)
    #: replay inflation: charge costs as if data were this much larger
    scale: float = 1.0
    #: bytes per replay chunk (of scaled I/O)
    chunk_bytes: float = 4 * MIB
    #: producer lead over the consumer, in chunks
    prefetch_depth: int = 2

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ExecutionError("scale must be positive")
        if self.chunk_bytes <= 0:
            raise ExecutionError("chunk_bytes must be positive")
        if self.prefetch_depth < 1:
            raise ExecutionError("prefetch_depth must be >= 1")


@dataclass
class QueryResult:
    """Rows plus the measured time/energy of the run."""

    rows: list[tuple]
    columns: list[str]
    started_at: float
    finished_at: float
    energy_joules: float
    active_energy_joules: float
    breakdown_joules: dict[str, float]
    pipelines: list[PipelineCost]
    cpu_busy_seconds: float
    io_busy_seconds: float

    @property
    def row_count(self) -> int:
        return len(self.rows)

    @property
    def elapsed_seconds(self) -> float:
        return self.finished_at - self.started_at

    @property
    def average_power_watts(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.energy_joules / self.elapsed_seconds

    def energy_efficiency(self, work_done: float = 1.0) -> float:
        """Work per Joule (§2.1); default counts the query as 1 unit."""
        if self.energy_joules <= 0:
            raise ExecutionError("no energy recorded")
        return work_done / self.energy_joules


class Executor:
    """Runs operator trees on a simulated server."""

    def __init__(self, ctx: ExecutionContext) -> None:
        self.ctx = ctx

    # -- public API ---------------------------------------------------------
    def run(self, root: Operator) -> QueryResult:
        """Evaluate and replay a single query to completion."""
        sim = self.ctx.sim
        process = sim.spawn(self.run_process(root), name="query")
        return sim.run(until=process)

    def run_process(self, root: Operator) -> Generator:
        """The query as a simulation process (composable: spawn several
        of these to model concurrent streams sharing the hardware)."""
        collector = CostCollector(params=self.ctx.params,
                                  scale=self.ctx.scale)
        rows = root.execute(collector)
        # name the final (unlabeled) pipeline after the plan root, so
        # telemetry spans read "tablescan" instead of "pipeline0"
        collector.break_pipeline(label=root.name.lower())
        meter = self.ctx.server.meter
        started_at = self.ctx.sim.now
        busy_before = self._busy_snapshot()
        yield from self._replay_all(collector.pipelines, root)
        finished_at = self.ctx.sim.now
        busy_after = self._busy_snapshot()
        active = self._active_energy(busy_before, busy_after)
        cpu_delta = busy_after["cpu"] - busy_before["cpu"]
        io_delta = sum(
            busy_after[k] - busy_before[k] for k in busy_after if k != "cpu")
        return QueryResult(
            rows=rows,
            columns=root.output_columns,
            started_at=started_at,
            finished_at=finished_at,
            energy_joules=meter.energy_joules(started_at, finished_at),
            active_energy_joules=active,
            breakdown_joules=meter.breakdown_joules(started_at, finished_at),
            pipelines=collector.pipelines,
            cpu_busy_seconds=cpu_delta,
            io_busy_seconds=io_delta,
        )

    def _replay_all(self, pipelines: list[PipelineCost],
                    root: Operator) -> Generator:
        """Replay every pipeline, under telemetry spans when captured.

        Spans carry explicit parents: concurrent query processes
        interleave on the event queue, so the open-span *stack* cannot
        be trusted to reflect this query's structure — the parent link
        can.
        """
        telemetry = current_collector()
        if telemetry is None:
            for pipeline in pipelines:
                yield from self._replay_pipeline(pipeline)
            return
        sim = self.ctx.sim
        with telemetry.span(sim, f"query:{root.name.lower()}",
                            root=True) as query:
            for pipeline in pipelines:
                name = pipeline.label or f"pipeline{pipeline.index}"
                with telemetry.span(sim, name, parent=query):
                    yield from self._replay_pipeline(pipeline)

    # -- busy accounting ----------------------------------------------------
    def _busy_snapshot(self) -> dict[str, float]:
        server = self.ctx.server
        snap = {"cpu": server.cpu.busy_seconds()}
        for device in server.storage:
            snap[device.name] = device.busy_seconds()
        return snap

    def _active_energy(self, before: dict[str, float],
                       after: dict[str, float]) -> float:
        """Busy-time x active-power accounting (the paper's Figure 2
        convention: idle components are free)."""
        server = self.ctx.server
        total = (after["cpu"] - before["cpu"]) * \
            server.cpu.active_power_per_unit_watts
        for device in server.storage:
            per_unit = getattr(device, "active_power_per_unit_watts", None)
            if per_unit is not None:
                total += (after[device.name] - before[device.name]) * per_unit
        return total

    # -- pipeline replay ----------------------------------------------------
    def _replay_pipeline(self, pipeline: PipelineCost) -> Generator:
        ctx = self.ctx
        dram = ctx.server.dram
        grant = self._clamped_grant(pipeline.dram_grant_bytes)
        if grant:
            dram.allocate(grant)
        try:
            if not pipeline.io:
                if pipeline.cpu_cycles > 0:
                    yield from ctx.server.cpu.execute(
                        pipeline.cpu_cycles,
                        parallelism=self._parallelism(pipeline))
                return
            yield from self._replay_overlapped(pipeline)
        finally:
            if grant:
                dram.free(grant)

    def _parallelism(self, pipeline: PipelineCost) -> int:
        return min(pipeline.parallelism, self.ctx.server.cpu.spec.cores)

    def _clamped_grant(self, requested: float) -> int:
        dram = self.ctx.server.dram
        available = dram.powered_bytes - dram.allocated_bytes
        return max(0, min(int(requested), available))

    def _replay_overlapped(self, pipeline: PipelineCost) -> Generator:
        """Producers stream chunks; the consumer burns CPU per chunk."""
        ctx = self.ctx
        sim = ctx.sim
        chunk_plans: list[tuple[Any, float, Any, bool, int, float]] = []
        total_chunks = 0
        for req in pipeline.io:
            n = max(1, math.ceil(req.nbytes / ctx.chunk_bytes))
            chunk_plans.append(
                (req.array, req.nbytes / n, req.stream, req.is_write, n,
                 req.n_random_requests / n))
            total_chunks += n
        cpu_per_chunk = pipeline.cpu_cycles / total_chunks
        parallelism = self._parallelism(pipeline)
        slots = Resource(sim, capacity=ctx.prefetch_depth, name="prefetch")
        ready: deque[float] = deque()
        waiter: list[Optional[Event]] = [None]

        def producer(array, chunk_size, stream, is_write, n_chunks,
                     requests_per_chunk):
            for _ in range(n_chunks):
                yield slots.acquire()
                if requests_per_chunk > 0:
                    yield from array.read_batch(chunk_size,
                                                requests_per_chunk)
                elif is_write:
                    yield from array.write(chunk_size, stream=stream)
                else:
                    yield from array.read(chunk_size, stream=stream)
                ready.append(chunk_size)
                if waiter[0] is not None and not waiter[0].triggered:
                    waiter[0].succeed()

        def consumer():
            for _ in range(total_chunks):
                while not ready:
                    waiter[0] = Event(sim)
                    yield waiter[0]
                    waiter[0] = None
                ready.popleft()
                if cpu_per_chunk > 0:
                    yield from ctx.server.cpu.execute(
                        cpu_per_chunk, parallelism=parallelism)
                slots.release()

        producers = [sim.spawn(producer(*plan), name="io-producer")
                     for plan in chunk_plans]
        consumer_proc = sim.spawn(consumer(), name="cpu-consumer")
        yield sim.all_of([*producers, consumer_proc])
