"""Table schemas and record (row) encoding.

Rows are encoded with a null bitmap followed by the encoded values of
the non-NULL fields, so row-store tables have realistic physical sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.errors import SchemaError
from repro.relational.types import DataType


@dataclass(frozen=True)
class Column:
    """One column: a name, a type, and a nullability flag."""

    name: str
    dtype: DataType
    nullable: bool = True

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"bad column name {self.name!r}")


class TableSchema:
    """An ordered list of named, typed columns."""

    def __init__(self, name: str, columns: Sequence[Column]) -> None:
        if not name:
            raise SchemaError("table name cannot be empty")
        if not columns:
            raise SchemaError(f"table {name!r} needs at least one column")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"table {name!r} has duplicate column names")
        self.name = name
        self.columns = list(columns)
        self._index = {c.name: i for i, c in enumerate(columns)}

    # -- lookup ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self.columns)

    def __contains__(self, column_name: str) -> bool:
        return column_name in self._index

    def column(self, name: str) -> Column:
        """Column by name."""
        try:
            return self.columns[self._index[name]]
        except KeyError:
            raise SchemaError(
                f"table {self.name!r} has no column {name!r}") from None

    def position(self, name: str) -> int:
        """Ordinal position of a column."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(
                f"table {self.name!r} has no column {name!r}") from None

    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    def project(self, names: Iterable[str], new_name: str = "") -> "TableSchema":
        """A schema containing only the given columns, in the given order."""
        cols = [self.column(n) for n in names]
        return TableSchema(new_name or f"{self.name}_proj", cols)

    # -- row validation and encoding --------------------------------------
    def validate_row(self, row: Sequence[Any]) -> None:
        """Check arity, types, and nullability of a row."""
        if len(row) != len(self.columns):
            raise SchemaError(
                f"table {self.name!r}: row has {len(row)} fields, "
                f"schema has {len(self.columns)}")
        for value, col in zip(row, self.columns):
            if value is None:
                if not col.nullable:
                    raise SchemaError(
                        f"column {col.name!r} is NOT NULL")
                continue
            col.dtype.validate(value)

    def encode_row(self, row: Sequence[Any]) -> bytes:
        """Encode a row: null bitmap + encoded non-NULL values."""
        self.validate_row(row)
        nbytes = (len(self.columns) + 7) // 8
        bitmap = bytearray(nbytes)
        parts = [bytes(nbytes)]  # placeholder, replaced below
        encoded = bytearray()
        for i, (value, col) in enumerate(zip(row, self.columns)):
            if value is None:
                bitmap[i // 8] |= 1 << (i % 8)
            else:
                encoded += col.dtype.encode(value)
        parts[0] = bytes(bitmap)
        return bytes(bitmap) + bytes(encoded)

    def decode_row(self, data: bytes) -> tuple[Any, ...]:
        """Decode a row previously produced by :meth:`encode_row`."""
        nbytes = (len(self.columns) + 7) // 8
        if len(data) < nbytes:
            raise SchemaError("record shorter than its null bitmap")
        bitmap = data[:nbytes]
        offset = nbytes
        values: list[Any] = []
        for i, col in enumerate(self.columns):
            if bitmap[i // 8] & (1 << (i % 8)):
                values.append(None)
                continue
            value, consumed = col.dtype.decode(data, offset)
            offset += consumed
            values.append(value)
        if offset != len(data):
            raise SchemaError(
                f"record has {len(data) - offset} trailing bytes")
        return tuple(values)

    def row_size_bytes(self, row: Sequence[Any]) -> int:
        """Encoded size of a row without materializing the bytes."""
        nbytes = (len(self.columns) + 7) // 8
        total = nbytes
        for value, col in zip(row, self.columns):
            if value is not None:
                total += col.dtype.encoded_size(value)
        return total

    def __repr__(self) -> str:
        cols = ", ".join(f"{c.name} {c.dtype.value}" for c in self.columns)
        return f"TableSchema({self.name!r}: {cols})"


@dataclass
class TableStatsSnapshot:
    """Physical statistics the optimizer reads from the catalog."""

    row_count: int = 0
    total_bytes: int = 0
    column_bytes: dict[str, int] = field(default_factory=dict)

    @property
    def average_row_bytes(self) -> float:
        if self.row_count == 0:
            return 0.0
        return self.total_bytes / self.row_count
