"""Relational engine: types, schemas, expressions, operators, executor."""

from repro.relational.catalog import Catalog
from repro.relational.schema import Column, TableSchema
from repro.relational.types import DataType

__all__ = ["Catalog", "Column", "DataType", "TableSchema"]
