"""Plan utilities: validation, pretty-printing, pipeline preview."""

from __future__ import annotations

from typing import Callable

from repro.errors import PlanError
from repro.relational.operators.base import CostCollector, Operator


def explain(root: Operator) -> str:
    """Render an operator tree as an indented plan, root first."""
    lines: list[str] = []

    def walk(op: Operator, depth: int) -> None:
        lines.append("  " * depth + "-> " + op.describe())
        for child in op.children():
            walk(child, depth + 1)

    walk(root, 0)
    return "\n".join(lines)


def validate(root: Operator) -> None:
    """Structural checks: acyclicity and output-column consistency."""
    seen: set[int] = set()

    def walk(op: Operator) -> None:
        if id(op) in seen:
            raise PlanError(
                f"operator {op.describe()} appears twice in the plan; "
                "operator trees must not share nodes")
        seen.add(id(op))
        if not op.output_columns:
            raise PlanError(f"{op.describe()} produces no columns")
        for child in op.children():
            walk(child)

    walk(root)


def operator_count(root: Operator) -> int:
    """Number of operators in the tree."""
    return 1 + sum(operator_count(c) for c in root.children())


def collect_scans(root: Operator) -> list[Operator]:
    """All leaf scan operators, left to right."""
    if not root.children():
        return [root]
    out: list[Operator] = []
    for child in root.children():
        out.extend(collect_scans(child))
    return out


def preview_pipelines(plan_builder: Callable[[], Operator],
                      scale: float = 1.0) -> list[dict]:
    """Dry-run a plan (built fresh by ``plan_builder``) and summarize its
    pipelines: CPU cycles, I/O bytes, memory grants.

    Takes a builder rather than a plan because evaluation is effectful
    (stream ids, spill flags); callers keep their real plan pristine.
    """
    collector = CostCollector(scale=scale)
    plan_builder().execute(collector)
    return [
        {
            "index": p.index,
            "label": p.label,
            "cpu_cycles": p.cpu_cycles,
            "io_bytes": p.io_bytes,
            "dram_grant_bytes": p.dram_grant_bytes,
            "parallelism": p.parallelism,
        }
        for p in collector.pipelines
    ]
