"""Column data types and their physical encodings.

The storage engine is byte-accurate: every type knows how to encode a
value to bytes and back, so table sizes, compression ratios, and
therefore simulated I/O times are grounded in real encoded bytes.
"""

from __future__ import annotations

import enum
import struct
from datetime import date, timedelta
from typing import Any

from repro.errors import SchemaError

_EPOCH = date(1970, 1, 1)


class DataType(enum.Enum):
    """Supported column types with fixed or variable width."""

    INT32 = "int32"
    INT64 = "int64"
    FLOAT64 = "float64"
    DATE = "date"
    VARCHAR = "varchar"
    BOOL = "bool"

    @property
    def fixed_width(self) -> int | None:
        """Encoded width in bytes, or None for variable-width types."""
        return _WIDTHS[self]

    def validate(self, value: Any) -> None:
        """Raise :class:`SchemaError` unless ``value`` fits this type."""
        if value is None:
            return  # NULLs are allowed in any column unless schema says not
        expected = _PYTHON_TYPES[self]
        if self is DataType.FLOAT64 and isinstance(value, int):
            return  # ints are acceptable floats
        if not isinstance(value, expected):
            raise SchemaError(
                f"value {value!r} is not valid for {self.value}")
        if self is DataType.INT32 and not -2**31 <= value < 2**31:
            raise SchemaError(f"{value} out of int32 range")

    def encode(self, value: Any) -> bytes:
        """Encode a non-NULL value to its physical bytes."""
        if value is None:
            raise SchemaError("cannot encode NULL; handle at record level")
        if self is DataType.INT32:
            return struct.pack("<i", value)
        if self is DataType.INT64:
            return struct.pack("<q", value)
        if self is DataType.FLOAT64:
            return struct.pack("<d", float(value))
        if self is DataType.DATE:
            return struct.pack("<i", (value - _EPOCH).days)
        if self is DataType.BOOL:
            return struct.pack("<?", value)
        if self is DataType.VARCHAR:
            raw = value.encode("utf-8")
            return struct.pack("<I", len(raw)) + raw
        raise SchemaError(f"unhandled type {self}")

    def decode(self, data: bytes, offset: int = 0) -> tuple[Any, int]:
        """Decode one value at ``offset``; returns (value, bytes consumed)."""
        if self is DataType.INT32:
            return struct.unpack_from("<i", data, offset)[0], 4
        if self is DataType.INT64:
            return struct.unpack_from("<q", data, offset)[0], 8
        if self is DataType.FLOAT64:
            return struct.unpack_from("<d", data, offset)[0], 8
        if self is DataType.DATE:
            days = struct.unpack_from("<i", data, offset)[0]
            return _EPOCH + timedelta(days=days), 4
        if self is DataType.BOOL:
            return struct.unpack_from("<?", data, offset)[0], 1
        if self is DataType.VARCHAR:
            (length,) = struct.unpack_from("<I", data, offset)
            start = offset + 4
            raw = data[start:start + length]
            if len(raw) != length:
                raise SchemaError("truncated varchar")
            return raw.decode("utf-8"), 4 + length
        raise SchemaError(f"unhandled type {self}")

    def encoded_size(self, value: Any) -> int:
        """Bytes this value occupies when encoded."""
        if self.fixed_width is not None:
            return self.fixed_width
        return 4 + len(value.encode("utf-8"))


_WIDTHS = {
    DataType.INT32: 4,
    DataType.INT64: 8,
    DataType.FLOAT64: 8,
    DataType.DATE: 4,
    DataType.BOOL: 1,
    DataType.VARCHAR: None,
}

_PYTHON_TYPES = {
    DataType.INT32: int,
    DataType.INT64: int,
    DataType.FLOAT64: float,
    DataType.DATE: date,
    DataType.BOOL: bool,
    DataType.VARCHAR: str,
}
