"""System catalog: schemas and statistics by table name."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import CatalogError
from repro.relational.schema import TableSchema

if TYPE_CHECKING:  # pragma: no cover
    from repro.optimizer.stats import TableStatistics


class Catalog:
    """Registered schemas plus optimizer statistics."""

    def __init__(self) -> None:
        self._schemas: dict[str, TableSchema] = {}
        self._stats: dict[str, "TableStatistics"] = {}

    def register(self, schema: TableSchema) -> TableSchema:
        """Add a schema; duplicate names are an error."""
        if schema.name in self._schemas:
            raise CatalogError(f"table {schema.name!r} already registered")
        self._schemas[schema.name] = schema
        return schema

    def unregister(self, name: str) -> None:
        """Remove a schema and any statistics for it."""
        if name not in self._schemas:
            raise CatalogError(f"no table named {name!r}")
        del self._schemas[name]
        self._stats.pop(name, None)

    def schema(self, name: str) -> TableSchema:
        """Schema by table name."""
        try:
            return self._schemas[name]
        except KeyError:
            raise CatalogError(f"no table named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._schemas

    def table_names(self) -> list[str]:
        return sorted(self._schemas)

    # -- statistics ---------------------------------------------------------
    def set_statistics(self, name: str, stats: "TableStatistics") -> None:
        """Attach optimizer statistics to a registered table."""
        if name not in self._schemas:
            raise CatalogError(f"no table named {name!r}")
        self._stats[name] = stats

    def statistics(self, name: str) -> Optional["TableStatistics"]:
        """Statistics for a table, or None if never analyzed."""
        if name not in self._schemas:
            raise CatalogError(f"no table named {name!r}")
        return self._stats.get(name)
