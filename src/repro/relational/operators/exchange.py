"""Exchange operator: intra-query parallelism.

Marks the current pipeline to execute its CPU work on ``degree`` cores.
§5.3: "parallelization and system scalability will continue to be
important avenues for maintaining maximum efficiency" — the executor
charges the same cycles across more cores, shortening time while raising
instantaneous CPU power, so the energy effect of parallelism is an
output of the model rather than an assumption.
"""

from __future__ import annotations

from repro.errors import PlanError
from repro.relational.operators.base import CostCollector, Operator


class Exchange(Operator):
    """Run the child's pipeline with the given degree of parallelism."""

    def __init__(self, child: Operator, degree: int) -> None:
        if degree < 1:
            raise PlanError("parallelism degree must be >= 1")
        super().__init__(child.output_columns)
        self.child = child
        self.degree = degree

    def children(self) -> list[Operator]:
        return [self.child]

    def execute(self, collector: CostCollector) -> list[tuple]:
        rows = self.child.execute(collector)
        collector.set_parallelism(self.degree)
        return rows

    def describe(self) -> str:
        return f"Exchange(degree={self.degree})"
