"""Projection: column selection and computed expressions."""

from __future__ import annotations

from typing import Sequence, Union

from repro.errors import PlanError
from repro.relational.expr import ColumnRef, Expr, make_layout
from repro.relational.operators.base import CostCollector, Operator

Projection = Union[str, tuple[str, Expr]]


class Project(Operator):
    """Produce named outputs: plain columns or ``(alias, expression)``."""

    def __init__(self, child: Operator,
                 projections: Sequence[Projection]) -> None:
        if not projections:
            raise PlanError("projection list cannot be empty")
        names: list[str] = []
        exprs: list[Expr] = []
        available = set(child.output_columns)
        for item in projections:
            if isinstance(item, str):
                if item not in available:
                    raise PlanError(
                        f"column {item!r} not produced by {child.describe()}")
                names.append(item)
                exprs.append(ColumnRef(item))
            else:
                alias, expr = item
                missing = expr.columns() - available
                if missing:
                    raise PlanError(
                        f"projection {alias!r} references missing columns "
                        f"{missing}")
                names.append(alias)
                exprs.append(expr)
        super().__init__(names)
        self.child = child
        self.exprs = exprs

    def children(self) -> list[Operator]:
        return [self.child]

    def execute(self, collector: CostCollector) -> list[tuple]:
        rows = self.child.execute(collector)
        per_tuple = sum(e.cycles() for e in self.exprs)
        collector.charge_cpu(len(rows) * per_tuple)
        layout = make_layout(self.child.output_columns)
        exprs = self.exprs
        return [tuple(e.evaluate(row, layout) for e in exprs)
                for row in rows]

    def describe(self) -> str:
        return f"Project({self.output_columns})"
