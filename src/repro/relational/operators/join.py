"""Join operators: hash join, block nested-loop join, sort-merge join.

§4.1 singles these out: hash join "relies on using a large chunk of
memory for building and maintaining the hash table.  From a power
perspective, these are expensive operations and may tip the balance in
favor of nested-loop join in more occasions than before."  The hash join
therefore records its hash-table memory grant, which the replay phase
holds in DRAM for the probe pipeline's duration; the nested-loop join
instead re-reads its inner table per outer block.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import PlanError
from repro.relational.expr import Expr, make_layout
from repro.relational.operators.base import CostCollector, Operator
from repro.relational.operators.scan import TableScan


def _check_keys(side: Operator, keys: Sequence[str], role: str) -> None:
    missing = set(keys) - set(side.output_columns)
    if missing:
        raise PlanError(f"{role} keys {missing} not produced by "
                        f"{side.describe()}")


def _joined_columns(left: Operator, right: Operator) -> list[str]:
    overlap = set(left.output_columns) & set(right.output_columns)
    if overlap:
        raise PlanError(
            f"join sides share column names {sorted(overlap)}; "
            "project/rename before joining")
    return left.output_columns + right.output_columns


class HashJoin(Operator):
    """Equi-join: build a hash table on one side, stream the other.

    Output columns are build-side columns followed by probe-side columns.
    """

    def __init__(self, build: Operator, probe: Operator,
                 build_keys: Sequence[str],
                 probe_keys: Sequence[str]) -> None:
        if len(build_keys) != len(probe_keys) or not build_keys:
            raise PlanError("key lists must be same non-zero length")
        _check_keys(build, build_keys, "build")
        _check_keys(probe, probe_keys, "probe")
        super().__init__(_joined_columns(build, probe))
        self.build = build
        self.probe = probe
        self.build_keys = list(build_keys)
        self.probe_keys = list(probe_keys)

    def children(self) -> list[Operator]:
        return [self.build, self.probe]

    def hash_table_bytes(self, build_rows: list[tuple]) -> float:
        """Estimated resident size of the hash table."""
        if not build_rows:
            return 0.0
        # rough per-row footprint: 8 bytes/field + bucket overhead
        per_row = 8 * len(self.build.output_columns) + 48
        return len(build_rows) * per_row

    def execute(self, collector: CostCollector) -> list[tuple]:
        params = collector.params
        build_rows = self.build.execute(collector)
        collector.charge_cpu(
            len(build_rows) * params.cycles_per_hash_build_tuple)
        # The build phase ends its pipeline: the hash table materializes.
        collector.break_pipeline(label=f"build:{self.describe()}")

        build_layout = make_layout(self.build.output_columns)
        build_positions = [build_layout[k] for k in self.build_keys]
        table: dict[tuple, list[tuple]] = {}
        for row in build_rows:
            key = tuple(row[p] for p in build_positions)
            table.setdefault(key, []).append(row)

        probe_rows = self.probe.execute(collector)
        # The probe pipeline holds the hash table in memory end to end.
        grant = (self.hash_table_bytes(build_rows)
                 * params.hash_table_overhead_factor)
        collector.charge_dram_grant(grant)
        probe_layout = make_layout(self.probe.output_columns)
        probe_positions = [probe_layout[k] for k in self.probe_keys]
        out: list[tuple] = []
        for row in probe_rows:
            key = tuple(row[p] for p in probe_positions)
            for match in table.get(key, ()):
                out.append(match + row)
        collector.charge_cpu(
            len(probe_rows) * params.cycles_per_hash_probe_tuple
            + len(out) * params.cycles_per_output_tuple)
        return out

    def describe(self) -> str:
        return f"HashJoin({self.build_keys} = {self.probe_keys})"


class BlockNestedLoopJoin(Operator):
    """Join by re-scanning the inner table once per outer block.

    Uses almost no memory (one outer block), at the price of repeated
    inner I/O — the §4.1 memory-power counterpoint to the hash join.
    The inner side must be a :class:`TableScan` so re-reads can be
    charged against its table.
    """

    def __init__(self, outer: Operator, inner: TableScan,
                 predicate: Expr, block_rows: int = 1024) -> None:
        if not isinstance(inner, TableScan):
            raise PlanError("nested-loop inner side must be a TableScan")
        if block_rows < 1:
            raise PlanError("block_rows must be >= 1")
        columns = _joined_columns(outer, inner)
        missing = predicate.columns() - set(columns)
        if missing:
            raise PlanError(f"join predicate references {missing}")
        super().__init__(columns)
        self.outer = outer
        self.inner = inner
        self.predicate = predicate
        self.block_rows = block_rows

    def children(self) -> list[Operator]:
        return [self.outer, self.inner]

    def execute(self, collector: CostCollector) -> list[tuple]:
        params = collector.params
        outer_rows = self.outer.execute(collector)
        n_blocks = max(1, -(-len(outer_rows) // self.block_rows))
        # Evaluate the inner scan once for correctness; it charged its
        # own single read + CPU.  Charge the (n_blocks - 1) re-reads.
        inner_rows = self.inner.execute(collector)
        rescan_bytes = self.inner.table.scan_bytes(
            self.inner.output_columns) * (n_blocks - 1)
        collector.charge_io(self.inner.table.placement, rescan_bytes,
                            self.inner.stream_id)
        rescan_cpu = (
            self.inner.table.plain_bytes(self.inner.output_columns)
            * params.cycles_per_scan_byte
            + self.inner.table.row_count * params.cycles_per_tuple_overhead
        ) * (n_blocks - 1)
        collector.charge_cpu(rescan_cpu)

        layout = make_layout(self.output_columns)
        predicate = self.predicate
        out = []
        for outer_row in outer_rows:
            for inner_row in inner_rows:
                combined = outer_row + inner_row
                if predicate.evaluate(combined, layout) is True:
                    out.append(combined)
        collector.charge_cpu_quadratic(
            len(outer_rows) * len(inner_rows) * params.cycles_per_join_pair)
        collector.charge_cpu(len(out) * params.cycles_per_output_tuple)
        return out

    def describe(self) -> str:
        return f"BlockNestedLoopJoin({self.predicate!r})"


class SortMergeJoin(Operator):
    """Equi-join over inputs sorted here on the join keys.

    Both inputs are materialized and sorted (blocking), then merged.
    """

    def __init__(self, left: Operator, right: Operator,
                 left_keys: Sequence[str],
                 right_keys: Sequence[str]) -> None:
        if len(left_keys) != len(right_keys) or not left_keys:
            raise PlanError("key lists must be same non-zero length")
        _check_keys(left, left_keys, "left")
        _check_keys(right, right_keys, "right")
        super().__init__(_joined_columns(left, right))
        self.left = left
        self.right = right
        self.left_keys = list(left_keys)
        self.right_keys = list(right_keys)

    def children(self) -> list[Operator]:
        return [self.left, self.right]

    @staticmethod
    def _sort_cycles(n: int, compare_cycles: float) -> float:
        if n < 2:
            return 0.0
        return n * max(1.0, (n - 1).bit_length()) * compare_cycles

    def execute(self, collector: CostCollector) -> list[tuple]:
        params = collector.params
        left_rows = self.left.execute(collector)
        collector.charge_cpu(
            self._sort_cycles(len(left_rows), params.cycles_per_sort_compare))
        collector.break_pipeline(label=f"sort-left:{self.describe()}")
        right_rows = self.right.execute(collector)
        collector.charge_cpu(
            self._sort_cycles(len(right_rows), params.cycles_per_sort_compare))
        collector.break_pipeline(label=f"sort-right:{self.describe()}")

        left_layout = make_layout(self.left.output_columns)
        right_layout = make_layout(self.right.output_columns)
        lpos = [left_layout[k] for k in self.left_keys]
        rpos = [right_layout[k] for k in self.right_keys]
        left_sorted = sorted(left_rows, key=lambda r: tuple(r[p] for p in lpos))
        right_sorted = sorted(right_rows,
                              key=lambda r: tuple(r[p] for p in rpos))
        out: list[tuple] = []
        i = j = 0
        while i < len(left_sorted) and j < len(right_sorted):
            lkey = tuple(left_sorted[i][p] for p in lpos)
            rkey = tuple(right_sorted[j][p] for p in rpos)
            if lkey < rkey:
                i += 1
            elif lkey > rkey:
                j += 1
            else:
                j_end = j
                while (j_end < len(right_sorted)
                       and tuple(right_sorted[j_end][p] for p in rpos) == lkey):
                    j_end += 1
                i_end = i
                while (i_end < len(left_sorted)
                       and tuple(left_sorted[i_end][p] for p in lpos) == lkey):
                    i_end += 1
                for li in range(i, i_end):
                    for rj in range(j, j_end):
                        out.append(left_sorted[li] + right_sorted[rj])
                i, j = i_end, j_end
        collector.charge_cpu(
            (len(left_rows) + len(right_rows)) * params.cycles_per_merge_tuple
            + len(out) * params.cycles_per_output_tuple)
        return out

    def describe(self) -> str:
        return f"SortMergeJoin({self.left_keys} = {self.right_keys})"
