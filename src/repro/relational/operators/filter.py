"""Filter operator: applies a predicate to its child's tuples."""

from __future__ import annotations

from repro.errors import PlanError
from repro.relational.expr import Expr, make_layout
from repro.relational.operators.base import CostCollector, Operator


class Filter(Operator):
    """Keep tuples for which the predicate evaluates to true."""

    def __init__(self, child: Operator, predicate: Expr) -> None:
        missing = predicate.columns() - set(child.output_columns)
        if missing:
            raise PlanError(
                f"filter references columns {missing} not produced by "
                f"{child.describe()}")
        super().__init__(child.output_columns)
        self.child = child
        self.predicate = predicate

    def children(self) -> list[Operator]:
        return [self.child]

    def execute(self, collector: CostCollector) -> list[tuple]:
        rows = self.child.execute(collector)
        collector.charge_cpu(len(rows) * self.predicate.cycles())
        layout = make_layout(self.output_columns)
        predicate = self.predicate
        return [row for row in rows
                if predicate.evaluate(row, layout) is True]

    def describe(self) -> str:
        return f"Filter({self.predicate!r})"
