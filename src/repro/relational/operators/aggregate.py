"""Aggregation operators: hash-based and sorted-input streaming."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.errors import PlanError
from repro.relational.expr import Expr, make_layout
from repro.relational.operators.base import CostCollector, Operator

_AGG_FUNCS = ("count", "sum", "avg", "min", "max")


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate: function, input expression, output alias."""

    func: str
    expr: Optional[Expr]  # None only for count(*)
    alias: str

    def __post_init__(self) -> None:
        if self.func not in _AGG_FUNCS:
            raise PlanError(f"unknown aggregate {self.func!r}")
        if self.expr is None and self.func != "count":
            raise PlanError(f"{self.func} needs an input expression")
        if not self.alias:
            raise PlanError("aggregate needs an alias")


class _Accumulator:
    __slots__ = ("func", "count", "total", "low", "high")

    def __init__(self, func: str) -> None:
        self.func = func
        self.count = 0
        self.total = 0.0
        self.low: Any = None
        self.high: Any = None

    def update(self, value: Any) -> None:
        if value is None:
            return
        self.count += 1
        if self.func in ("sum", "avg"):
            self.total += value
        elif self.func == "min":
            self.low = value if self.low is None else min(self.low, value)
        elif self.func == "max":
            self.high = value if self.high is None else max(self.high, value)

    def result(self) -> Any:
        if self.func == "count":
            return self.count
        if self.func == "sum":
            return self.total if self.count else None
        if self.func == "avg":
            return self.total / self.count if self.count else None
        if self.func == "min":
            return self.low
        return self.high


class _AggregateBase(Operator):
    def __init__(self, child: Operator, group_by: Sequence[str],
                 aggregates: Sequence[AggregateSpec]) -> None:
        if not aggregates and not group_by:
            raise PlanError("aggregation needs group keys or aggregates")
        available = set(child.output_columns)
        missing = set(group_by) - available
        if missing:
            raise PlanError(f"group keys {missing} not produced by child")
        for spec in aggregates:
            if spec.expr is not None:
                bad = spec.expr.columns() - available
                if bad:
                    raise PlanError(
                        f"aggregate {spec.alias!r} references {bad}")
        names = list(group_by) + [s.alias for s in aggregates]
        super().__init__(names)
        self.child = child
        self.group_by = list(group_by)
        self.aggregates = list(aggregates)

    def children(self) -> list[Operator]:
        return [self.child]

    def _compute(self, rows: list[tuple]) -> list[tuple]:
        layout = make_layout(self.child.output_columns)
        positions = [layout[k] for k in self.group_by]
        groups: dict[tuple, list[_Accumulator]] = {}
        order: list[tuple] = []
        for row in rows:
            key = tuple(row[p] for p in positions)
            accs = groups.get(key)
            if accs is None:
                accs = [_Accumulator(s.func) for s in self.aggregates]
                groups[key] = accs
                order.append(key)
            for acc, spec in zip(accs, self.aggregates):
                if spec.expr is None:
                    acc.count += 1
                else:
                    acc.update(spec.expr.evaluate(row, layout))
        if not self.group_by and not groups:
            # global aggregate over empty input still yields one row
            accs = [_Accumulator(s.func) for s in self.aggregates]
            return [tuple(a.result() for a in accs)]
        return [key + tuple(a.result() for a in groups[key])
                for key in order]

    def _update_cycles(self, n_rows: int, params) -> float:
        expr_cycles = sum(s.expr.cycles() for s in self.aggregates
                          if s.expr is not None)
        return n_rows * (params.cycles_per_agg_update
                         * max(1, len(self.aggregates)) + expr_cycles)


class HashAggregate(_AggregateBase):
    """Group by hashing; blocking (results emitted after all input)."""

    def execute(self, collector: CostCollector) -> list[tuple]:
        params = collector.params
        rows = self.child.execute(collector)
        collector.charge_cpu(self._update_cycles(len(rows), params))
        out = self._compute(rows)
        # group state lives in memory for the input pipeline's duration
        collector.charge_dram_grant(
            len(out) * (8 * len(self.output_columns) + 64))
        collector.break_pipeline(label="hash-aggregate")
        collector.charge_cpu(len(out) * params.cycles_per_output_tuple)
        return out

    def describe(self) -> str:
        aggs = [f"{s.func}->{s.alias}" for s in self.aggregates]
        return f"HashAggregate(by={self.group_by}, {aggs})"


class SortedAggregate(_AggregateBase):
    """Streaming aggregation over input sorted on the group keys.

    Non-blocking (no pipeline break, no hash-table grant) but requires
    sorted input — the classic optimizer alternative to hashing.
    """

    def execute(self, collector: CostCollector) -> list[tuple]:
        params = collector.params
        rows = self.child.execute(collector)
        layout = make_layout(self.child.output_columns)
        positions = [layout[k] for k in self.group_by]
        keys = [tuple(row[p] for p in positions) for row in rows]
        if keys != sorted(keys):
            raise PlanError(
                "SortedAggregate requires input sorted on group keys")
        collector.charge_cpu(self._update_cycles(len(rows), params))
        out = self._compute(rows)
        collector.charge_cpu(len(out) * params.cycles_per_output_tuple)
        return out

    def describe(self) -> str:
        aggs = [f"{s.func}->{s.alias}" for s in self.aggregates]
        return f"SortedAggregate(by={self.group_by}, {aggs})"
