"""Limit (and offset) operator."""

from __future__ import annotations

from repro.errors import PlanError
from repro.relational.operators.base import CostCollector, Operator


class Limit(Operator):
    """Pass through at most ``count`` tuples, after skipping ``offset``.

    Note: because evaluation is materialized, upstream costs are charged
    in full — matching a blocking plan; a true streaming early-out is a
    possible refinement the optimizer does not currently model either.
    """

    def __init__(self, child: Operator, count: int, offset: int = 0) -> None:
        if count < 0 or offset < 0:
            raise PlanError("limit/offset cannot be negative")
        super().__init__(child.output_columns)
        self.child = child
        self.count = count
        self.offset = offset

    def children(self) -> list[Operator]:
        return [self.child]

    def execute(self, collector: CostCollector) -> list[tuple]:
        rows = self.child.execute(collector)
        return rows[self.offset:self.offset + self.count]

    def describe(self) -> str:
        if self.offset:
            return f"Limit({self.count}, offset={self.offset})"
        return f"Limit({self.count})"
