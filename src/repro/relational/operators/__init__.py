"""Physical operators (volcano-style, with cost collection)."""

from repro.relational.operators.base import (
    CostCollector,
    CostParameters,
    IoRequest,
    Operator,
    PipelineCost,
)
from repro.relational.operators.scan import TableScan
from repro.relational.operators.filter import Filter
from repro.relational.operators.project import Project
from repro.relational.operators.index import (
    IndexNestedLoopJoin,
    IndexScan,
)
from repro.relational.operators.join import (
    BlockNestedLoopJoin,
    HashJoin,
    SortMergeJoin,
)
from repro.relational.operators.sort import Sort
from repro.relational.operators.aggregate import (
    AggregateSpec,
    HashAggregate,
    SortedAggregate,
)
from repro.relational.operators.limit import Limit
from repro.relational.operators.exchange import Exchange

__all__ = [
    "AggregateSpec",
    "BlockNestedLoopJoin",
    "CostCollector",
    "CostParameters",
    "Exchange",
    "Filter",
    "HashAggregate",
    "HashJoin",
    "IndexNestedLoopJoin",
    "IndexScan",
    "IoRequest",
    "Limit",
    "Operator",
    "PipelineCost",
    "Project",
    "Sort",
    "SortMergeJoin",
    "SortedAggregate",
    "TableScan",
]
