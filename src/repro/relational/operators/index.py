"""Index-based access paths: index scan and index nested-loop join.

These are the access paths that make §5.1's physical-design space (and
§4.1's join-choice example) real: a selective range predicate can read
a few leaf pages plus matching heap rows instead of the whole table —
but unclustered rid fetches are *random* I/O, so the optimizer must
weigh positioning energy against scan bandwidth.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional, Sequence

from repro.errors import PlanError
from repro.relational.operators.base import CostCollector, Operator
from repro.storage.index import TableIndex
from repro.storage.manager import Table

_index_counter = itertools.count()

#: CPU cycles per B+tree level traversed during a probe
CYCLES_PER_TREE_LEVEL = 60.0
#: CPU cycles to decode one fetched heap row
CYCLES_PER_FETCHED_ROW = 80.0


class IndexScan(Operator):
    """Range (or exact-match) scan through a B+tree index.

    ``low``/``high`` bound the indexed column (inclusive, None = open).
    """

    def __init__(self, table: Table, column: str,
                 low: Any = None, high: Any = None,
                 columns: Optional[Sequence[str]] = None) -> None:
        index = table.index_on(column)
        if index is None:
            raise PlanError(
                f"table {table.name!r} has no index on {column!r}")
        if low is None and high is None:
            raise PlanError("index scan needs at least one bound; "
                            "use TableScan for full scans")
        names = list(columns) if columns else table.schema.column_names()
        for name in names:
            if name not in table.schema:
                raise PlanError(
                    f"table {table.name!r} has no column {name!r}")
        super().__init__(names)
        self.table = table
        self.index: TableIndex = index
        self.low = low
        self.high = high
        self.stream_id = f"ixscan-{table.name}-{next(_index_counter)}"

    def children(self) -> list[Operator]:
        return []

    def execute(self, collector: CostCollector) -> list[tuple]:
        rows = list(self.index.range_rows(self.low, self.high))
        # leaf pages stream sequentially along the leaf chain
        leaf_bytes = self.index.range_leaf_bytes(self.low, self.high)
        collector.charge_io(self.table.placement, leaf_bytes,
                            self.stream_id)
        # heap fetches: sequential if clustered, random otherwise
        fetch_bytes, random_requests = self.index.heap_fetch_plan(len(rows))
        if random_requests:
            collector.charge_random_io(self.table.placement, fetch_bytes,
                                       random_requests)
        elif fetch_bytes:
            collector.charge_io(self.table.placement, fetch_bytes,
                                self.stream_id)
        collector.charge_cpu(
            len(rows) * (CYCLES_PER_FETCHED_ROW
                         + self.index.tree.height * CYCLES_PER_TREE_LEVEL
                         / max(1, len(rows))))
        positions = [self.table.schema.position(c)
                     for c in self.output_columns]
        return [tuple(row[p] for p in positions) for row in rows]

    def describe(self) -> str:
        kind = "clustered" if self.index.clustered else "secondary"
        return (f"IndexScan({self.table.name}.{self.index.column} "
                f"[{self.low!r}..{self.high!r}], {kind})")


class IndexNestedLoopJoin(Operator):
    """For each outer tuple, probe the inner table's index.

    The paper's §4.1 nested-loop alternative made practical: per-probe
    cost is one leaf page plus the matching heap rows, both random I/O —
    no hash table, no memory grant.
    """

    def __init__(self, outer: Operator, inner_table: Table,
                 inner_column: str, outer_key: str,
                 inner_columns: Optional[Sequence[str]] = None) -> None:
        index = inner_table.index_on(inner_column)
        if index is None:
            raise PlanError(
                f"table {inner_table.name!r} has no index on "
                f"{inner_column!r}")
        if outer_key not in outer.output_columns:
            raise PlanError(
                f"outer side does not produce {outer_key!r}")
        inner_names = (list(inner_columns) if inner_columns
                       else inner_table.schema.column_names())
        overlap = set(outer.output_columns) & set(inner_names)
        if overlap:
            raise PlanError(
                f"join sides share column names {sorted(overlap)}")
        super().__init__(list(outer.output_columns) + inner_names)
        self.outer = outer
        self.inner_table = inner_table
        self.index: TableIndex = index
        self.outer_key = outer_key
        self.inner_columns = inner_names

    def children(self) -> list[Operator]:
        return [self.outer]

    def execute(self, collector: CostCollector) -> list[tuple]:
        outer_rows = self.outer.execute(collector)
        key_pos = self.outer.output_columns.index(self.outer_key)
        inner_positions = [self.inner_table.schema.position(c)
                           for c in self.inner_columns]
        out: list[tuple] = []
        n_matches = 0
        for outer_row in outer_rows:
            for match in self.index.search_rows(outer_row[key_pos]):
                n_matches += 1
                out.append(outer_row
                           + tuple(match[p] for p in inner_positions))
        # each probe reads one leaf page; each match fetches a heap row
        n_probes = len(outer_rows)
        probe_bytes = n_probes * self.index.probe_io_bytes()
        fetch_bytes, random_fetches = self.index.heap_fetch_plan(n_matches)
        collector.charge_random_io(
            self.inner_table.placement,
            probe_bytes + fetch_bytes,
            n_probes + random_fetches)
        collector.charge_cpu(
            n_probes * self.index.tree.height * CYCLES_PER_TREE_LEVEL
            + n_matches * CYCLES_PER_FETCHED_ROW
            + len(out) * collector.params.cycles_per_output_tuple)
        return out

    def describe(self) -> str:
        return (f"IndexNestedLoopJoin({self.outer_key} = "
                f"{self.inner_table.name}.{self.index.column})")
