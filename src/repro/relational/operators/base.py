"""Operator base class and cost collection.

Execution is two-phase (see :mod:`repro.relational.executor`):

1. *Evaluate*: operators run for real over the stored tuples, producing
   correct results while recording what the work costs — CPU cycles,
   I/O requests against placements, and memory grants — into a
   :class:`CostCollector`, organized into *pipelines* (maximal
   non-blocking operator chains).
2. *Replay*: the executor turns each pipeline into simulation processes
   (I/O producers + a CPU consumer with bounded prefetch), which is
   where time passes and energy is spent.

The ``scale`` factor implements replay inflation: operators evaluate a
small materialized dataset but charge costs as if the data were
``scale`` times larger, letting laptop-sized runs reproduce the paper's
machine-sized experiments without materializing 300 GB in Python.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional, Sequence

from repro.errors import PlanError

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.raid import RaidArray


@dataclass(frozen=True)
class CostParameters:
    """CPU-cycle constants shared by the executor and the optimizer.

    ``cycles_per_scan_byte`` is calibrated so the Figure 2 node (2.4 GHz)
    spends 3.2 s of CPU scanning and projecting 2.4 GB: 3.2 cycles/byte.
    """

    cycles_per_scan_byte: float = 3.2
    cycles_per_tuple_overhead: float = 16.0
    cycles_per_hash_build_tuple: float = 120.0
    cycles_per_hash_probe_tuple: float = 80.0
    cycles_per_sort_compare: float = 24.0
    cycles_per_merge_tuple: float = 40.0
    cycles_per_agg_update: float = 32.0
    cycles_per_output_tuple: float = 20.0
    cycles_per_join_pair: float = 8.0
    hash_table_overhead_factor: float = 1.5
    sort_run_overhead_factor: float = 1.0


@dataclass
class IoRequest:
    """Bytes to move against a placement during replay.

    ``n_random_requests > 0`` marks random I/O (index probes, unclustered
    rid fetches): replay then charges that many positionings instead of
    streaming the bytes sequentially.
    """

    array: "RaidArray"
    nbytes: float
    stream: Any
    is_write: bool = False
    n_random_requests: float = 0.0


@dataclass
class PipelineCost:
    """Accumulated cost of one pipeline (between blocking boundaries)."""

    index: int
    cpu_cycles: float = 0.0
    io: list[IoRequest] = field(default_factory=list)
    dram_grant_bytes: float = 0.0
    parallelism: int = 1
    label: str = ""

    @property
    def io_bytes(self) -> float:
        return sum(req.nbytes for req in self.io)


class CostCollector:
    """Builds the pipeline cost list during the evaluate phase."""

    def __init__(self, params: Optional[CostParameters] = None,
                 scale: float = 1.0) -> None:
        if scale <= 0:
            raise PlanError(f"scale must be positive, got {scale}")
        self.params = params or CostParameters()
        self.scale = scale
        self.pipelines: list[PipelineCost] = []
        self._current: Optional[PipelineCost] = None

    # -- pipeline structure ---------------------------------------------------
    @property
    def current(self) -> PipelineCost:
        if self._current is None:
            self._current = PipelineCost(index=len(self.pipelines))
            self.pipelines.append(self._current)
        return self._current

    def break_pipeline(self, label: str = "") -> None:
        """End the current pipeline at a blocking operator boundary."""
        if self._current is not None and label and not self._current.label:
            self._current.label = label
        self._current = None

    # -- charging -----------------------------------------------------------
    def charge_cpu(self, cycles: float) -> None:
        """Add (scaled) CPU cycles to the current pipeline."""
        if cycles < 0:
            raise PlanError("negative CPU charge")
        self.current.cpu_cycles += cycles * self.scale

    def charge_cpu_quadratic(self, cycles: float) -> None:
        """Add CPU cycles for pairwise work (nested loops).

        Pair counts grow quadratically with data volume, so replay
        inflation applies ``scale`` squared.
        """
        if cycles < 0:
            raise PlanError("negative CPU charge")
        self.current.cpu_cycles += cycles * self.scale * self.scale

    def charge_io(self, array: "RaidArray", nbytes: float, stream: Any,
                  is_write: bool = False) -> None:
        """Add a (scaled) sequential I/O request to the current pipeline."""
        if nbytes < 0:
            raise PlanError("negative I/O charge")
        if nbytes == 0:
            return
        self.current.io.append(
            IoRequest(array, nbytes * self.scale, stream, is_write))

    def charge_random_io(self, array: "RaidArray", nbytes: float,
                         n_requests: float, is_write: bool = False) -> None:
        """Add (scaled) random I/O: ``n_requests`` positioned accesses
        moving ``nbytes`` in total (index probes, rid fetches)."""
        if nbytes < 0 or n_requests < 0:
            raise PlanError("negative random I/O charge")
        if nbytes == 0 and n_requests == 0:
            return
        self.current.io.append(
            IoRequest(array, nbytes * self.scale, stream=None,
                      is_write=is_write,
                      n_random_requests=n_requests * self.scale))

    def charge_dram_grant(self, nbytes: float) -> None:
        """Record a memory grant held for the current pipeline's duration."""
        if nbytes < 0:
            raise PlanError("negative memory grant")
        self.current.dram_grant_bytes += nbytes * self.scale

    def set_parallelism(self, degree: int) -> None:
        """Set the CPU parallelism of the current pipeline."""
        if degree < 1:
            raise PlanError("parallelism must be >= 1")
        self.current.parallelism = degree

    # -- summaries --------------------------------------------------------
    def total_cpu_cycles(self) -> float:
        return sum(p.cpu_cycles for p in self.pipelines)

    def total_io_bytes(self) -> float:
        return sum(p.io_bytes for p in self.pipelines)


class Operator:
    """Base physical operator.

    Subclasses implement :meth:`execute`, which returns the full result
    as a list of tuples and charges costs into the collector.  Results
    are materialized lists (not generators) so the cost accounting is
    complete when execute returns — the simulation replay needs totals.
    """

    def __init__(self, output_columns: Sequence[str]) -> None:
        names = list(output_columns)
        if len(set(names)) != len(names):
            raise PlanError(f"duplicate output columns: {names}")
        self.output_columns = names

    def execute(self, collector: CostCollector) -> list[tuple]:
        raise NotImplementedError

    def children(self) -> list["Operator"]:
        """Child operators, for plan traversal/printing."""
        return []

    @property
    def name(self) -> str:
        return type(self).__name__

    def describe(self) -> str:
        """One-line description for plan printing."""
        return self.name

    def __repr__(self) -> str:
        return f"<{self.describe()}>"
