"""Table scan with projection and predicate pushdown.

The scan is where I/O is charged: a row store reads its whole heap
regardless of projection, a column store reads only the projected
columns' (compressed) segments — exactly the §5.1 trade-off.  CPU is
charged per plain byte processed, plus decompression cycles on the
compressed bytes, plus predicate evaluation per tuple.
"""

from __future__ import annotations

import itertools
from typing import Optional, Sequence

from repro.errors import PlanError
from repro.relational.expr import Expr, make_layout
from repro.relational.operators.base import CostCollector, Operator
from repro.storage.manager import Table

_scan_counter = itertools.count()


class TableScan(Operator):
    """Scan a stored table, optionally projecting and filtering."""

    def __init__(self, table: Table,
                 columns: Optional[Sequence[str]] = None,
                 predicate: Optional[Expr] = None,
                 shared_pass: bool = False) -> None:
        names = list(columns) if columns else table.schema.column_names()
        for name in names:
            if name not in table.schema:
                raise PlanError(
                    f"table {table.name!r} has no column {name!r}")
        if predicate is not None:
            missing = predicate.columns() - set(names)
            if missing:
                raise PlanError(
                    f"predicate references unprojected columns {missing}; "
                    "include them in the scan's column list")
        super().__init__(names)
        self.table = table
        self.predicate = predicate
        #: piggyback on a concurrent scan of the same table (§5.2 work
        #: sharing): tuples still flow and CPU is charged, but the I/O
        #: belongs to the leader of the shared pass
        self.shared_pass = shared_pass
        self.stream_id = f"scan-{table.name}-{next(_scan_counter)}"

    def children(self) -> list[Operator]:
        return []

    def execute(self, collector: CostCollector) -> list[tuple]:
        params = collector.params
        # I/O: physical (possibly compressed) bytes of the projection.
        scan_bytes = self.table.scan_bytes(self.output_columns)
        if not self.shared_pass:
            collector.charge_io(self.table.placement, scan_bytes,
                                self.stream_id)
        # CPU: byte-proportional processing of the plain data...
        plain_bytes = self.table.plain_bytes(self.output_columns)
        cpu = plain_bytes * params.cycles_per_scan_byte
        # ...plus decompression of the stored bytes...
        cpu += scan_bytes * self.table.decode_cycles_per_scan_byte(
            self.output_columns)
        # ...plus per-tuple overhead and predicate evaluation.
        row_count = self.table.row_count
        cpu += row_count * params.cycles_per_tuple_overhead
        if self.predicate is not None:
            cpu += row_count * self.predicate.cycles()
        collector.charge_cpu(cpu)

        rows = self.table.iterate(self.output_columns)
        if self.predicate is None:
            return list(rows)
        layout = make_layout(self.output_columns)
        predicate = self.predicate
        return [row for row in rows
                if predicate.evaluate(row, layout) is True]

    def describe(self) -> str:
        layout = self.table.layout
        pred = (f" where {self.predicate!r}"
                if self.predicate is not None else "")
        return (f"TableScan({self.table.name}, {layout}, "
                f"cols={self.output_columns}{pred})")
