"""Sort operator: in-memory or external merge sort.

External sorting spills sorted runs to a temporary placement and merges
them back — both the spill writes and the merge reads are charged, so
the optimizer's memory-grant knob (§4.1) has a real energy consequence.
"""

from __future__ import annotations

import itertools
from typing import Optional, Sequence

from repro.errors import PlanError
from repro.relational.expr import make_layout
from repro.relational.operators.base import CostCollector, Operator

_sort_counter = itertools.count()


class Sort(Operator):
    """Order tuples by key columns (ascending by default)."""

    #: rough per-field in-memory footprint used for spill decisions
    BYTES_PER_FIELD = 16

    def __init__(self, child: Operator, keys: Sequence[str],
                 descending: Optional[Sequence[bool]] = None,
                 memory_grant_bytes: Optional[float] = None,
                 spill_placement=None) -> None:
        if not keys:
            raise PlanError("sort needs at least one key")
        missing = set(keys) - set(child.output_columns)
        if missing:
            raise PlanError(f"sort keys {missing} not produced by child")
        if descending is not None and len(descending) != len(keys):
            raise PlanError("descending flags must match key count")
        super().__init__(child.output_columns)
        self.child = child
        self.keys = list(keys)
        self.descending = list(descending) if descending else \
            [False] * len(keys)
        self.memory_grant_bytes = memory_grant_bytes
        self.spill_placement = spill_placement
        self.stream_id = f"sort-spill-{next(_sort_counter)}"
        self.spilled = False

    def children(self) -> list[Operator]:
        return [self.child]

    def _estimated_bytes(self, rows: list[tuple]) -> float:
        return len(rows) * len(self.output_columns) * self.BYTES_PER_FIELD

    def _sort_cycles(self, n: int, params) -> float:
        if n < 2:
            return 0.0
        return n * max(1.0, (n - 1).bit_length()) * \
            params.cycles_per_sort_compare

    def execute(self, collector: CostCollector) -> list[tuple]:
        params = collector.params
        rows = self.child.execute(collector)
        data_bytes = self._estimated_bytes(rows)
        grant = self.memory_grant_bytes
        self.spilled = (grant is not None and data_bytes > grant
                        and self.spill_placement is not None)
        if self.spilled:
            # Run generation: sort grant-sized chunks, write them out.
            assert grant is not None
            n_runs = max(2, int(-(-data_bytes // grant)))
            run_rows = max(1, len(rows) // n_runs)
            collector.charge_cpu(
                n_runs * self._sort_cycles(run_rows, params))
            spill_bytes = data_bytes * params.sort_run_overhead_factor
            collector.charge_io(self.spill_placement, spill_bytes,
                                self.stream_id, is_write=True)
            collector.break_pipeline(label="sort-runs")
            # Merge phase: read runs back, k-way merge.
            collector.charge_io(self.spill_placement, spill_bytes,
                                self.stream_id)
            merge_passes = max(1.0, _log_base(n_runs, 16))
            collector.charge_cpu(
                len(rows) * params.cycles_per_merge_tuple * merge_passes)
        else:
            collector.charge_cpu(self._sort_cycles(len(rows), params))
            # an in-memory sort holds the whole input resident (§4.1:
            # operator memory grants are power-expensive)
            collector.charge_dram_grant(data_bytes)
            collector.break_pipeline(label="sort")
            # emitting the sorted result starts the next pipeline
            collector.charge_cpu(len(rows) * params.cycles_per_output_tuple)

        layout = make_layout(self.output_columns)
        positions = [layout[k] for k in self.keys]
        ordered = rows
        # Stable multi-key sort: apply keys right-to-left.
        for position, desc in reversed(list(zip(positions, self.descending))):
            ordered = sorted(ordered, key=lambda r: r[position], reverse=desc)
        return list(ordered)

    def describe(self) -> str:
        direction = ["desc" if d else "asc" for d in self.descending]
        return f"Sort({list(zip(self.keys, direction))})"


def _log_base(n: float, base: float) -> float:
    import math
    if n <= 1:
        return 1.0
    return math.ceil(math.log(n, base))
