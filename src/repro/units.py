"""Unit constants and conversion helpers.

All simulated quantities in this library use SI base units internally:
seconds for time, bytes for data, Joules for energy, Watts for power and
Hertz for frequency.  The constants below exist so call sites can say
``64 * GIB`` or ``2.4 * GHZ`` instead of sprinkling magic powers of two
and ten through the code.
"""

from __future__ import annotations

# --- data sizes (bytes) ----------------------------------------------------
KB = 10**3
MB = 10**6
GB = 10**9
TB = 10**12

KIB = 2**10
MIB = 2**20
GIB = 2**30
TIB = 2**40

# --- time (seconds) --------------------------------------------------------
USEC = 1e-6
MSEC = 1e-3
SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0

# --- frequency (Hz) --------------------------------------------------------
MHZ = 10**6
GHZ = 10**9

# --- energy / power --------------------------------------------------------
JOULE = 1.0
KILOJOULE = 10**3
WATT = 1.0
KILOWATT = 10**3
# 1 kWh in Joules: convenient for data-center cost arithmetic.
KWH = 3.6e6


def joules(avg_power_watts: float, seconds: float) -> float:
    """Energy used by a task: average power times duration (paper §2.1)."""
    if avg_power_watts < 0:
        raise ValueError(f"power must be non-negative, got {avg_power_watts}")
    if seconds < 0:
        raise ValueError(f"duration must be non-negative, got {seconds}")
    return avg_power_watts * seconds


def watts(energy_joules: float, seconds: float) -> float:
    """Average power over an interval: energy divided by duration."""
    if seconds <= 0:
        raise ValueError(f"duration must be positive, got {seconds}")
    return energy_joules / seconds


def pretty_bytes(n: float) -> str:
    """Render a byte count with a binary-prefix unit, e.g. ``1.5 GiB``."""
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or unit == "TiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{value:.0f} B"
        value /= 1024.0
    raise AssertionError("unreachable")


def pretty_time(seconds: float) -> str:
    """Render a duration with an adaptive unit, e.g. ``3.2 s`` or ``150 us``."""
    if seconds < 0:
        return "-" + pretty_time(-seconds)
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f} ms"
    if seconds < MINUTE:
        return f"{seconds:.2f} s"
    if seconds < HOUR:
        return f"{seconds / MINUTE:.1f} min"
    return f"{seconds / HOUR:.2f} h"
