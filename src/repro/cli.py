"""Shared command-line plumbing for the repo's ``python -m`` tools.

Every operator CLI (``repro.runner``, ``repro.observatory``,
``repro.flightrec``) makes the same three promises:

* a :class:`~repro.errors.ReproError` prints as ``error: <message>``
  on stderr — one line, no traceback — and exits 2;
* a downstream pipe closing early (``... | head``) exits 0 quietly
  instead of spraying ``BrokenPipeError`` at interpreter shutdown;
* stdout is flushed *inside* the guard, so output smaller than the
  pipe buffer still surfaces the closed pipe where the guard can
  swallow it.

:func:`run_guarded` is that contract in one place; each CLI's
``main`` wraps its subcommand dispatch in it instead of copying the
``try``/``except`` ladder.
"""

from __future__ import annotations

import os
import sys
from typing import Callable

from repro.errors import ReproError


def run_guarded(dispatch: Callable[[], int]) -> int:
    """Run ``dispatch`` under the shared CLI error contract.

    ``dispatch`` is the CLI's subcommand switch: zero arguments,
    returns the process exit code.  ``SystemExit`` (argparse usage
    errors) passes through untouched.
    """
    try:
        code = dispatch()
        # flush inside the guard: output smaller than the pipe buffer
        # would otherwise surface BrokenPipeError only at interpreter
        # shutdown, past any except clause
        sys.stdout.flush()
        return code
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream closed the pipe early; park stdout on devnull so
        # the interpreter's shutdown flush doesn't raise again, and
        # exit quietly.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
