"""``python -m repro.runner`` — the single operational entry point.

Subcommands::

    run EXPERIMENT [--workers N] [--seed S] [--no-cache] [--json]
                   [--<knob> value ...]      # e.g. --disks 36,66
    list                                     # registered experiments
    cache stats | cache clear                # inspect / wipe the store

Knob flags are generic: any ``--name value`` pair after the known
options overrides that knob, and a comma-separated value makes the
knob a sweep axis (``--disks 36,66,108`` sweeps three points).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Optional, Sequence

from repro.core.report import format_table
from repro.errors import ReproError
from repro.runner.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.runner.events import EventPrinter
from repro.runner.registry import get_experiment, list_experiments
from repro.runner.runner import Runner
from repro.runner.spec import ExperimentSpec


def parse_knob_value(text: str) -> Any:
    """``"36"`` -> 36, ``"0.5"`` -> 0.5, ``"true"`` -> True,
    ``"null"`` -> None, ``"36,66"`` -> [36, 66], else the string."""
    if "," in text:
        return [parse_knob_value(part) for part in text.split(",") if part]
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    if lowered in ("null", "none"):
        return None
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        return text


def parse_knob_args(extras: Sequence[str]) -> dict[str, Any]:
    """Turn trailing ``--name value`` pairs into a knob dict."""
    knobs: dict[str, Any] = {}
    i = 0
    while i < len(extras):
        flag = extras[i]
        if not flag.startswith("--") or len(flag) == 2:
            raise ReproError(f"expected a --knob flag, got {flag!r}")
        name = flag[2:].replace("-", "_")
        if "=" in name:
            name, _, raw = name.partition("=")
            i += 1
        else:
            if i + 1 >= len(extras):
                raise ReproError(f"knob --{name} is missing a value")
            raw = extras[i + 1]
            i += 2
        knobs[name] = parse_knob_value(raw)
    return knobs


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runner",
        description="Run the paper's experiments as cached, "
                    "parallel knob sweeps.")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="execute one experiment spec")
    run.add_argument("experiment", help="registered experiment name")
    run.add_argument("--workers", type=int, default=1,
                     help="process-pool size (default 1 = serial)")
    run.add_argument("--seed", type=int, default=None,
                     help="base seed for every point (default 2009)")
    run.add_argument("--cache", default=None, metavar="DIR",
                     help=f"cache directory (default {DEFAULT_CACHE_DIR}"
                          " or $REPRO_CACHE_DIR)")
    run.add_argument("--no-cache", action="store_true",
                     help="recompute every point, touch no cache")
    run.add_argument("--json", action="store_true", dest="as_json",
                     help="print the full RunResult as JSON on stdout")
    run.add_argument("--quiet", action="store_true",
                     help="suppress per-point progress on stderr")

    sub.add_parser("list", help="list registered experiments")

    cache = sub.add_parser("cache", help="inspect or wipe the cache")
    cache.add_argument("action", choices=("stats", "clear"))
    cache.add_argument("--cache", default=None, metavar="DIR")
    return parser


def _cmd_list() -> int:
    rows = []
    for defn in list_experiments():
        sweep = [f"{k}[{len(v)}]" for k, v in sorted(defn.defaults.items())
                 if isinstance(v, (list, tuple))]
        rows.append((defn.name, defn.profile or "-",
                     " ".join(sweep) or "-", defn.title))
    print(format_table(["experiment", "profile", "default sweep",
                        "description"], rows,
                       title="registered experiments"))
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = ResultCache(args.cache or DEFAULT_CACHE_DIR)
    if args.action == "stats":
        stats = cache.stats()
        print(f"cache root : {stats.root}")
        print(f"entries    : {stats.entries}")
        print(f"total bytes: {stats.total_bytes}")
    else:
        removed = cache.clear()
        print(f"removed {removed} cached point(s) from {cache.root}")
    return 0


def _cmd_run(args: argparse.Namespace, extras: Sequence[str]) -> int:
    knobs = parse_knob_args(extras)
    defn = get_experiment(args.experiment)
    spec_kwargs: dict[str, Any] = {"knobs": knobs,
                                   "profile": defn.profile}
    if args.seed is not None:
        spec_kwargs["seed"] = args.seed
    spec = ExperimentSpec(args.experiment, **spec_kwargs)

    if args.no_cache:
        cache: Any = False
    elif args.cache is not None:
        cache = args.cache
    else:
        cache = True
    on_event = None if args.quiet else EventPrinter()
    result = Runner(workers=args.workers, cache=cache,
                    on_event=on_event).run(spec)

    if args.as_json:
        print(result.to_json())
        return 0
    print(format_table(
        ["#", "point", "sim_seconds", "joules", "source"],
        [(i, label, round(sim, 4), round(joules, 2), source)
         for i, label, sim, joules, source in result.rows()],
        title=f"{defn.title} [spec {spec.spec_hash()[:12]}]"))
    print(f"{len(result.points)} point(s), {result.cache_hits} from "
          f"cache, {result.host_seconds:.2f}s host time")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args, extras = parser.parse_known_args(argv)
    try:
        if args.command == "list":
            if extras:
                parser.error(f"unrecognized arguments: {' '.join(extras)}")
            return _cmd_list()
        if args.command == "cache":
            if extras:
                parser.error(f"unrecognized arguments: {' '.join(extras)}")
            return _cmd_cache(args)
        return _cmd_run(args, extras)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
