"""``python -m repro.runner`` — the single operational entry point.

Subcommands::

    run EXPERIMENT [--workers N] [--seed S] [--no-cache] [--json]
                   [--trace] [--record]
                   [--<knob> value ...]             # e.g. --disks 36,66
    trace EXPERIMENT [--json | --csv] [--active] [--width N]
                   [--<knob> value ...]      # energy-attribution report
    list                                     # registered experiments
    cache stats [--json] | cache clear       # inspect / wipe the store

``trace`` runs the experiment with telemetry capture on (reports are
identical to ``run``; traced points cache separately) and prints, per
point, the span-tree energy flamegraph, the per-device breakdown, and
any counters — or the whole thing as JSON / tidy CSV.  ``run
--record`` instead captures a fleet flight recording per point (also
report-identical, also cached separately); feed the ``--json`` output
to ``python -m repro.flightrec`` for summaries, SLO burn analysis,
and the timeline console.

Knob flags are generic: any ``--name value`` pair after the known
options overrides that knob, and a comma-separated value makes the
knob a sweep axis (``--disks 36,66,108`` sweeps three points).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Optional, Sequence

from repro.cli import run_guarded
from repro.core.report import format_table
from repro.errors import ReproError
from repro.runner.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.runner.events import EventPrinter
from repro.runner.registry import get_experiment, list_experiments
from repro.runner.runner import Runner
from repro.runner.spec import ExperimentSpec


def parse_knob_value(text: str) -> Any:
    """``"36"`` -> 36, ``"0.5"`` -> 0.5, ``"true"`` -> True,
    ``"null"`` -> None, ``"36,66"`` -> [36, 66], else the string."""
    if "," in text:
        return [parse_knob_value(part) for part in text.split(",") if part]
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    if lowered in ("null", "none"):
        return None
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        return text


def parse_knob_args(extras: Sequence[str]) -> dict[str, Any]:
    """Turn trailing ``--name value`` pairs into a knob dict."""
    knobs: dict[str, Any] = {}
    i = 0
    while i < len(extras):
        flag = extras[i]
        if not flag.startswith("--") or len(flag) == 2:
            raise ReproError(f"expected a --knob flag, got {flag!r}")
        name = flag[2:].replace("-", "_")
        if "=" in name:
            name, _, raw = name.partition("=")
            i += 1
        else:
            if i + 1 >= len(extras):
                raise ReproError(f"knob --{name} is missing a value")
            raw = extras[i + 1]
            i += 2
        knobs[name] = parse_knob_value(raw)
    return knobs


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runner",
        description="Run the paper's experiments as cached, "
                    "parallel knob sweeps.")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_exec_options(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument("experiment", help="registered experiment name")
        cmd.add_argument("--workers", type=int, default=1,
                         help="process-pool size (default 1 = serial)")
        cmd.add_argument("--seed", type=int, default=None,
                         help="base seed for every point (default 2009)")
        cmd.add_argument("--cache", default=None, metavar="DIR",
                         help="cache directory (default "
                              f"{DEFAULT_CACHE_DIR} or $REPRO_CACHE_DIR)")
        cmd.add_argument("--no-cache", action="store_true",
                         help="recompute every point, touch no cache")
        cmd.add_argument("--json", action="store_true", dest="as_json",
                         help="print the full RunResult as JSON on stdout")
        cmd.add_argument("--quiet", action="store_true",
                         help="suppress per-point progress on stderr")

    run = sub.add_parser("run", help="execute one experiment spec")
    add_exec_options(run)
    run.add_argument("--trace", action="store_true",
                     help="capture telemetry (traces ride the JSON "
                          "output and the cache)")
    run.add_argument("--record", action="store_true",
                     help="capture a fleet flight recording (rides the "
                          "JSON output and the cache; inspect with "
                          "python -m repro.flightrec)")

    trace = sub.add_parser(
        "trace", help="run with telemetry and print the energy report")
    add_exec_options(trace)
    trace.add_argument("--csv", action="store_true", dest="as_csv",
                       help="print every point's trace as one tidy CSV")
    trace.add_argument("--active", action="store_true",
                       help="flamegraph busy-time energy instead of "
                            "metered energy")
    trace.add_argument("--width", type=int, default=60,
                       help="flamegraph bar width (default 60)")

    sub.add_parser("list", help="list registered experiments")

    cache = sub.add_parser("cache", help="inspect or wipe the cache")
    cache.add_argument("action", choices=("stats", "clear"))
    cache.add_argument("--cache", default=None, metavar="DIR")
    cache.add_argument("--json", action="store_true", dest="as_json",
                       help="(stats) print machine-readable JSON")
    return parser


def _cmd_list() -> int:
    rows = []
    for defn in list_experiments():
        sweep = [f"{k}[{len(v)}]" for k, v in sorted(defn.defaults.items())
                 if isinstance(v, (list, tuple))]
        rows.append((defn.name, defn.profile or "-",
                     " ".join(sweep) or "-", defn.title))
    print(format_table(["experiment", "profile", "default sweep",
                        "description"], rows,
                       title="registered experiments"))
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = ResultCache(args.cache or DEFAULT_CACHE_DIR)
    if args.action == "stats":
        stats = cache.stats()
        if args.as_json:
            print(json.dumps({"root": stats.root,
                              "entries": stats.entries,
                              "total_bytes": stats.total_bytes},
                             sort_keys=True))
        else:
            print(f"cache root : {stats.root}")
            print(f"entries    : {stats.entries}")
            print(f"total bytes: {stats.total_bytes}")
    else:
        if not cache.root.is_dir():
            raise ReproError(
                f"cache directory {cache.root} does not exist "
                "(nothing to clear)")
        removed = cache.clear()
        print(f"removed {removed} cached point(s) from {cache.root}")
    return 0


def _spec_and_cache(args: argparse.Namespace, extras: Sequence[str]
                    ) -> tuple[ExperimentSpec, Any]:
    knobs = parse_knob_args(extras)
    defn = get_experiment(args.experiment)
    spec_kwargs: dict[str, Any] = {"knobs": knobs,
                                   "profile": defn.profile}
    if args.seed is not None:
        spec_kwargs["seed"] = args.seed
    spec = ExperimentSpec(args.experiment, **spec_kwargs)
    if args.no_cache:
        cache: Any = False
    elif args.cache is not None:
        cache = args.cache
    else:
        cache = True
    return spec, cache


def _cmd_run(args: argparse.Namespace, extras: Sequence[str]) -> int:
    spec, cache = _spec_and_cache(args, extras)
    defn = get_experiment(args.experiment)
    on_event = None if args.quiet else EventPrinter()
    result = Runner(workers=args.workers, cache=cache,
                    on_event=on_event, trace=args.trace,
                    record=args.record).run(spec)

    if args.as_json:
        print(result.to_json())
        return 0
    print(format_table(
        ["#", "point", "sim_seconds", "joules", "source"],
        [(i, label, round(sim, 4), round(joules, 2), source)
         for i, label, sim, joules, source in result.rows()],
        title=f"{defn.title} [spec {spec.spec_hash()[:12]}]"))
    print(f"{len(result.points)} point(s), {result.cache_hits} from "
          f"cache, {result.host_seconds:.2f}s host time")
    return 0


def _cmd_trace(args: argparse.Namespace, extras: Sequence[str]) -> int:
    from repro.telemetry import (
        TelemetrySink,
        counter_rows,
        device_rows,
        render_flamegraph,
        trace_to_csv,
    )

    spec, cache = _spec_and_cache(args, extras)
    defn = get_experiment(args.experiment)
    sink = TelemetrySink(forward=None if args.quiet else EventPrinter())
    result = Runner(workers=args.workers, cache=cache,
                    on_event=sink, trace=True).run(spec)

    if args.as_json:
        print(result.to_json())
        return 0
    if args.as_csv:
        multi = len(sink.traces) > 1
        for n, index in enumerate(sorted(sink.traces)):
            text = trace_to_csv(sink.traces[index],
                                point=index if multi else None)
            # one header for the whole concatenation
            print(text.split("\n", 1)[1] if n else text, end="")
        return 0

    axes = list(spec.sweep_axes())
    for index in sorted(sink.traces):
        trace = sink.traces[index]
        knobs = sink.knobs[index]
        label = " ".join(f"{k}={knobs[k]}" for k in axes) or "defaults"
        print(f"\n== {defn.name} point {index}: {label} ==")
        print(render_flamegraph(trace, width=args.width,
                                active=args.active))
        print()
        print(format_table(
            ["device", "metered_J", "busy_time_J", "busy_s", "share"],
            device_rows(trace)))
        counters = counter_rows(trace)
        if counters:
            print(format_table(["counter", "value"], counters))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args, extras = parser.parse_known_args(argv)

    def dispatch() -> int:
        if args.command == "list":
            if extras:
                parser.error(f"unrecognized arguments: {' '.join(extras)}")
            return _cmd_list()
        if args.command == "cache":
            if extras:
                parser.error(f"unrecognized arguments: {' '.join(extras)}")
            return _cmd_cache(args)
        if args.command == "trace":
            return _cmd_trace(args, extras)
        return _cmd_run(args, extras)

    return run_guarded(dispatch)


if __name__ == "__main__":
    sys.exit(main())
