"""Declarative, hashable experiment specifications.

An :class:`ExperimentSpec` names a registered experiment, a knob
assignment (any knob may carry a *list* of values, which makes it a
sweep axis), a hardware-profile tag, and a base seed.  Everything in a
spec is JSON-serializable by construction, so a spec canonicalizes to
one byte string and therefore to one stable SHA-256 — the identity the
on-disk result cache and the CLI key off.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from repro.errors import ReproError


class SpecError(ReproError):
    """An experiment spec is malformed (unknown knob types, etc.)."""


#: knob values must be JSON scalars, or lists of them (a sweep axis)
_SCALARS = (bool, int, float, str, type(None))

DEFAULT_SEED = 2009  # the paper's year, used throughout the repo


def _check_scalar(name: str, value: Any) -> None:
    if not isinstance(value, _SCALARS):
        raise SpecError(
            f"knob {name!r} has non-JSON value {value!r}; knobs must be "
            "bool/int/float/str/None or lists of those")


def canonical_json(obj: Any) -> str:
    """The one canonical text form used for hashing and cache keys."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def stable_hash(obj: Any) -> str:
    """SHA-256 hex digest of an object's canonical JSON."""
    return hashlib.sha256(canonical_json(obj).encode()).hexdigest()


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment plus the knob grid to sweep it over.

    ``knobs`` overrides the experiment's registered defaults; a
    list-valued knob is swept (the point grid is the cartesian product
    of all list-valued knobs, expanded in sorted-knob-name order).
    ``seed`` is the base seed handed to every point; a point whose
    knobs include an explicit ``seed`` knob overrides it.
    """

    experiment: str
    knobs: Mapping[str, Any] = field(default_factory=dict)
    profile: str = ""
    seed: int = DEFAULT_SEED

    def __post_init__(self) -> None:
        if not self.experiment:
            raise SpecError("experiment name cannot be empty")
        for name, value in self.knobs.items():
            if isinstance(value, (list, tuple)):
                if not value:
                    raise SpecError(f"sweep knob {name!r} has no values")
                for item in value:
                    _check_scalar(name, item)
            else:
                _check_scalar(name, value)

    # -- identity ----------------------------------------------------

    def resolved_knobs(self) -> dict[str, Any]:
        """Registered defaults overlaid with this spec's knobs, with
        sweep axes normalized to lists."""
        from repro.runner.registry import get_experiment
        merged = dict(get_experiment(self.experiment).defaults)
        merged.update(self.knobs)
        return {name: list(v) if isinstance(v, (list, tuple)) else v
                for name, v in sorted(merged.items())}

    def canonical(self) -> dict[str, Any]:
        return {
            "experiment": self.experiment,
            "knobs": self.resolved_knobs(),
            "profile": self.profile,
            "seed": self.seed,
        }

    def spec_hash(self) -> str:
        """Stable identity of the whole spec (defaults included, so a
        spec hashes the same whether defaults are spelled out or not)."""
        return stable_hash(self.canonical())

    # -- the point grid ----------------------------------------------

    def sweep_axes(self) -> dict[str, list[Any]]:
        """The list-valued knobs, in sorted-name order."""
        return {name: value
                for name, value in self.resolved_knobs().items()
                if isinstance(value, list)}

    def points(self) -> list[dict[str, Any]]:
        """Expand the grid into fully-resolved per-point knob dicts."""
        resolved = self.resolved_knobs()
        axes = [(name, values) for name, values in resolved.items()
                if isinstance(values, list)]
        fixed = {name: value for name, value in resolved.items()
                 if not isinstance(value, list)}
        if not axes:
            return [dict(fixed)]
        out = []
        for combo in itertools.product(*(values for _, values in axes)):
            point = dict(fixed)
            point.update({name: value
                          for (name, _), value in zip(axes, combo)})
            out.append(point)
        return out

    def point_seed(self, point: Mapping[str, Any]) -> int:
        """The deterministic seed a point runs with: an explicit
        ``seed`` knob wins, else the spec's base seed."""
        seed = point.get("seed", self.seed)
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise SpecError(f"seed must be an int, got {seed!r}")
        return seed

    # -- serialization -----------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "experiment": self.experiment,
            "knobs": {name: value
                      for name, value in sorted(self.knobs.items())},
            "profile": self.profile,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        return cls(experiment=data["experiment"],
                   knobs=dict(data.get("knobs", {})),
                   profile=data.get("profile", ""),
                   seed=data.get("seed", DEFAULT_SEED))

    def describe(self) -> str:
        axes = self.sweep_axes()
        n = 1
        for values in axes.values():
            n *= len(values)
        sweep = ", ".join(f"{k}x{len(v)}" for k, v in axes.items())
        return (f"{self.experiment}: {n} point(s)"
                + (f" ({sweep})" if sweep else ""))

    def iter_point_ids(self) -> Iterator[tuple[int, dict[str, Any]]]:
        yield from enumerate(self.points())
