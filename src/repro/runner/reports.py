"""The unified report protocol and the type registry behind it.

Every experiment's per-point measurement object (``ThroughputReport``,
``ScanReport``, ``DutyCycleReport``, ...) and every figure-level
container (``Figure1Result``, ``Figure2Result``, ``EnergyProfile``)
speaks one protocol: ``to_dict()`` producing a JSON-safe dict and a
``from_dict()`` classmethod inverting it.  That round-trip is what
makes the on-disk cache, the process-pool hand-off, and the CLI's JSON
output all share one code path.
"""

from __future__ import annotations

from typing import Any, ClassVar, Protocol, runtime_checkable


@runtime_checkable
class Report(Protocol):
    """Anything with a JSON-safe to_dict/from_dict round trip."""

    def to_dict(self) -> dict[str, Any]: ...

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Report": ...


#: report type name -> class, for decoding cached / worker payloads
REPORT_TYPES: dict[str, type] = {}


def register_report(cls: type) -> type:
    """Register a report class for payload decoding (usable as a
    decorator on third-party report types)."""
    REPORT_TYPES[cls.__name__] = cls
    return cls


def _register_builtin_reports() -> None:
    from repro.consolidation.scheduler import ScheduleReport
    from repro.core.experiments import Figure1Result, Figure2Result
    from repro.core.profiler import EnergyProfile
    from repro.faults.experiments import ChaosSweepResult
    from repro.service.experiments import (HeteroSweepResult,
                                           MegaCalibrationReport,
                                           PVCQEDSweepResult)
    from repro.service.report import ServiceReport, ServiceSweepResult
    from repro.workloads.duty_cycle import DutyCycleReport
    from repro.workloads.pipelines.report import EtlReport, EtlSweepResult
    from repro.workloads.scan_workload import ScanReport
    from repro.workloads.throughput import ThroughputReport
    for cls in (ThroughputReport, ScanReport, DutyCycleReport,
                EnergyProfile, Figure1Result, Figure2Result,
                ScheduleReport, ServiceReport, ServiceSweepResult,
                ChaosSweepResult, HeteroSweepResult, PVCQEDSweepResult,
                MegaCalibrationReport, EtlReport, EtlSweepResult):
        register_report(cls)


def encode_report(report: Report) -> dict[str, Any]:
    """Tag a report's dict form with its type for later decoding."""
    name = type(report).__name__
    if name not in REPORT_TYPES:
        register_report(type(report))
    return {"type": name, "data": report.to_dict()}


def decode_report(payload: dict[str, Any]) -> Any:
    cls = REPORT_TYPES.get(payload["type"])
    if cls is None:
        raise KeyError(
            f"unknown report type {payload['type']!r}; register it with "
            "repro.runner.register_report")
    return cls.from_dict(payload["data"])


def report_metrics(report: Any) -> tuple[float, float]:
    """Best-effort (simulated seconds, Joules) for progress events.

    Reports expose these under experiment-specific names; unknown
    shapes degrade to zeros rather than failing the run.
    """
    seconds = 0.0
    for attr in ("makespan_seconds", "total_seconds", "window_seconds",
                 "elapsed_seconds", "seconds"):
        value = getattr(report, attr, None)
        if isinstance(value, (int, float)):
            seconds = float(value)
            break
    joules = 0.0
    for attr in ("energy_joules", "joules"):
        value = getattr(report, attr, None)
        if isinstance(value, (int, float)):
            joules = float(value)
            break
    return seconds, joules


_register_builtin_reports()
