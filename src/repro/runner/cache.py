"""Content-addressed on-disk cache of completed sweep points.

Keys are SHA-256 digests over (package version, experiment name,
fully-resolved point knobs, point seed); values are the exact payload
the worker produced (typed report dict + simulated seconds/Joules).
A repeated benchmark or CI run therefore skips every point it has
already simulated, and a version bump invalidates everything without
touching the store.

Layout: ``<root>/<first two hex chars>/<digest>.json``, written
atomically (tmp file + rename) so a killed run never leaves a corrupt
entry behind; unreadable entries degrade to cache misses.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Optional

from repro.runner.spec import stable_hash

DEFAULT_CACHE_DIR = ".repro-cache"


def _package_version() -> str:
    import repro
    return repro.__version__


def point_key(experiment: str, knobs: Mapping[str, Any], seed: int,
              version: str | None = None, trace: bool = False,
              record: bool = False) -> str:
    """The cache identity of one sweep point.

    Traced points live under distinct keys (their payloads carry the
    telemetry trace), and likewise recorded points (their payloads
    carry the flight recording); ``trace=False, record=False`` keys
    are unchanged from before either existed, so existing caches stay
    valid.
    """
    identity: dict[str, Any] = {
        "version": version if version is not None else _package_version(),
        "experiment": experiment,
        "knobs": {name: value for name, value in sorted(knobs.items())},
        "seed": seed,
    }
    if trace:
        identity["trace"] = True
    if record:
        identity["record"] = True
    return stable_hash(identity)


@dataclass(frozen=True)
class CacheStats:
    root: str
    entries: int
    total_bytes: int


class ResultCache:
    """A dictionary of point payloads, persisted under ``root``."""

    def __init__(self, root: str | os.PathLike = DEFAULT_CACHE_DIR):
        self.root = Path(root)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[dict[str, Any]]:
        path = self._path(key)
        try:
            with open(path, encoding="utf-8") as fh:
                return json.load(fh)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None

    def put(self, key: str, payload: Mapping[str, Any]) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, sort_keys=True)
        os.replace(tmp, path)

    def __contains__(self, key: str) -> bool:
        return self._path(key).is_file()

    def _entries(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("??/*.json"))

    def stats(self) -> CacheStats:
        entries = self._entries()
        return CacheStats(
            root=str(self.root),
            entries=len(entries),
            total_bytes=sum(p.stat().st_size for p in entries))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self._entries():
            path.unlink(missing_ok=True)
            removed += 1
        for sub in self.root.glob("??"):
            try:
                sub.rmdir()
            except OSError:
                pass
        return removed
