"""The experiment registry: names the runner can execute.

Each entry binds an experiment name to a *point function* (the physics
of one sweep point), its default knob grid, and an optional aggregator
that folds the finished points back into the figure-level result
object the paper-facing code expects.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Mapping, Optional, Sequence

from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover
    from repro.runner.runner import PointResult
    from repro.runner.spec import ExperimentSpec


class UnknownExperimentError(ReproError):
    """The spec names an experiment nobody registered."""


class UnknownKnobError(ReproError):
    """The spec sets a knob the experiment's point function lacks."""


@dataclass(frozen=True)
class ExperimentDef:
    """One runnable experiment."""

    name: str
    title: str
    point_fn: Callable[..., Any]
    defaults: Mapping[str, Any] = field(default_factory=dict)
    aggregate: Optional[Callable[[Sequence["PointResult"]], Any]] = None
    profile: str = ""

    def knob_names(self) -> set[str]:
        """Knob names the point function accepts (plus ``seed``)."""
        params = inspect.signature(self.point_fn).parameters
        return {p.name for p in params.values()
                if p.kind in (p.POSITIONAL_OR_KEYWORD,
                              p.KEYWORD_ONLY)} | {"seed"}

    def validate_knobs(self, knobs: Mapping[str, Any]) -> None:
        """Reject knobs the point function can't take, by name."""
        params = inspect.signature(self.point_fn).parameters
        if any(p.kind is p.VAR_KEYWORD for p in params.values()):
            return
        unknown = sorted(set(knobs) - self.knob_names())
        if unknown:
            known = ", ".join(sorted(self.knob_names()))
            raise UnknownKnobError(
                f"unknown knob(s) {', '.join(map(repr, unknown))} for "
                f"experiment {self.name!r}; valid knobs: {known}")

    def call_point(self, knobs: Mapping[str, Any], seed: int) -> Any:
        """Invoke the point function, passing ``seed`` iff it takes one."""
        kwargs = dict(knobs)
        params = inspect.signature(self.point_fn).parameters
        if "seed" in params:
            kwargs.setdefault("seed", seed)
        else:
            kwargs.pop("seed", None)
        return self.point_fn(**kwargs)


_REGISTRY: dict[str, ExperimentDef] = {}


def register_experiment(defn: ExperimentDef) -> ExperimentDef:
    _REGISTRY[defn.name] = defn
    return defn


def get_experiment(name: str) -> ExperimentDef:
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "(none)"
        raise UnknownExperimentError(
            f"unknown experiment {name!r}; registered: {known}") from None


def list_experiments() -> list[ExperimentDef]:
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def default_spec(name: str, **knob_overrides: Any) -> "ExperimentSpec":
    """A spec for ``name`` with registered defaults plus overrides."""
    from repro.runner.spec import ExperimentSpec
    defn = get_experiment(name)
    return ExperimentSpec(name, knobs=knob_overrides,
                          profile=defn.profile)


# -- built-in experiments -------------------------------------------------

def _fig1_aggregate(points: Sequence["PointResult"]) -> Any:
    from repro.core.experiments import Figure1Result
    return Figure1Result(
        disk_counts=[p.knobs["disks"] for p in points],
        reports=[p.report for p in points])


def _fig2_aggregate(points: Sequence["PointResult"]) -> Any:
    from repro.core.experiments import Figure2Result
    by_codec = {bool(p.knobs["compressed"]): p.report for p in points}
    if set(by_codec) != {False, True}:
        raise ReproError("fig2 needs exactly the compressed={False,True}"
                         " sweep to aggregate")
    return Figure2Result(uncompressed=by_codec[False],
                         compressed=by_codec[True])


def _svc_aggregate(points: Sequence["PointResult"]) -> Any:
    from repro.service.experiments import svc_aggregate
    return svc_aggregate(points)


def _chaos_aggregate(points: Sequence["PointResult"]) -> Any:
    from repro.faults.experiments import chaos_aggregate
    return chaos_aggregate(points)


def _hetero_aggregate(points: Sequence["PointResult"]) -> Any:
    from repro.service.experiments import hetero_aggregate
    return hetero_aggregate(points)


def _pvc_qed_aggregate(points: Sequence["PointResult"]) -> Any:
    from repro.service.experiments import pvc_qed_aggregate
    return pvc_qed_aggregate(points)


def _etl_aggregate(points: Sequence["PointResult"]) -> Any:
    from repro.workloads.pipelines.experiments import etl_aggregate
    return etl_aggregate(points)


def _register_builtin_experiments() -> None:
    from repro.consolidation.experiments import batching_point
    from repro.core.experiments import figure1_point, figure2_point
    from repro.faults.experiments import chaos_point
    from repro.hardware.profiles import FIG1_DISK_COUNTS
    from repro.service.experiments import (hetero_point,
                                           mega_calibration_point,
                                           mega_point, pvc_qed_point,
                                           service_point)
    from repro.workloads.duty_cycle import run_duty_cycle
    from repro.workloads.pipelines.experiments import etl_point
    from repro.workloads.scan_workload import run_scan

    register_experiment(ExperimentDef(
        name="fig1",
        title="Figure 1: TPC-H throughput test vs. number of disks "
              "(DL785, RAID 5)",
        point_fn=figure1_point,
        defaults={
            "disks": list(FIG1_DISK_COUNTS),
            "physical_scale_factor": 0.002,
            "logical_scale_factor": 300.0,
            "streams": 6,
            "queries_per_stream": 3,
            "parallelism": 4,
            "spindle_groups": 12,
        },
        aggregate=_fig1_aggregate,
        profile="dl785",
    ))
    register_experiment(ExperimentDef(
        name="fig2",
        title="Figure 2: uncompressed vs. compressed scan on the flash "
              "node",
        point_fn=figure2_point,
        defaults={
            "compressed": [False, True],
            "scale_factor": 0.002,
            "dvfs_fraction": 1.0,
        },
        aggregate=_fig2_aggregate,
        profile="flash_scan_node",
    ))
    register_experiment(ExperimentDef(
        name="scan",
        title="Flash column-scan microbenchmark (free knob grid over "
              "compression, DVFS, codec, scale)",
        point_fn=run_scan,
        defaults={
            "compressed": False,
            "scale_factor": 0.002,
            "dvfs_fraction": 1.0,
            "codec": None,
        },
        profile="flash_scan_node",
    ))
    register_experiment(ExperimentDef(
        name="batching",
        title="A3: FIFO vs. batched scheduling with array spin-down "
              "(consolidation in time, §4.2)",
        point_fn=batching_point,
        defaults={
            "policy": ["fifo", "batched"],
            "window_seconds": 120.0,
            "queries": 12,
            "rate_per_s": 1.0 / 45.0,
            "table_rows": 2000,
            "scale": 200.0,
            "tail_seconds": 300.0,
        },
        profile="commodity",
    ))
    _SVC_DEFAULTS = {
        "nodes": 16,
        "profile": "commodity",
        "pack_backlog_seconds": 0.2,
        "admission_limit_seconds": None,
        "target_utilization": 0.55,
        "epoch_seconds": 30.0,
        "min_nodes": 2,
    }
    register_experiment(ExperimentDef(
        name="svc_policies",
        title="Serving: dispatch-policy sweep, 3 x 350k queries on a "
              "16-node fleet (consolidation in space, §4.2)",
        point_fn=service_point,
        defaults={
            "policy": ["round_robin", "least_loaded", "power_aware"],
            "queries": 350_000,
            **_SVC_DEFAULTS,
        },
        aggregate=_svc_aggregate,
        profile="commodity",
    ))
    register_experiment(ExperimentDef(
        name="svc_smoke",
        title="Serving: small dispatch-policy sweep for CI smoke / "
              "observatory gating",
        point_fn=service_point,
        defaults={
            "policy": ["round_robin", "least_loaded", "power_aware"],
            "queries": 20_000,
            **_SVC_DEFAULTS,
        },
        aggregate=_svc_aggregate,
        profile="commodity",
    ))
    register_experiment(ExperimentDef(
        name="svc_fleet",
        title="Serving: power-aware packing vs. fleet size",
        point_fn=service_point,
        defaults={
            "policy": "power_aware",
            "queries": 150_000,
            **_SVC_DEFAULTS,
            "nodes": [8, 16, 32, 64],
        },
        aggregate=_svc_aggregate,
        profile="commodity",
    ))
    register_experiment(ExperimentDef(
        name="svc_hetero",
        title="Serving: heterogeneous fleet composition x load x SLA "
              "frontier (wimpy-vs-beefy crossover, arXiv 1208.1933)",
        point_fn=hetero_point,
        defaults={
            "composition": ["beefy", "wimpy", "mixed"],
            "load": [0.05, 0.2, 0.6, 1.2],
            "sla_scale": [1.0, 0.35],
            "policy": "power_aware",
            "queries": 40_000,
            "pack_backlog_seconds": 0.2,
            "admission_limit_seconds": None,
            "target_utilization": 0.55,
            "epoch_seconds": 30.0,
            "min_nodes": 2,
        },
        aggregate=_hetero_aggregate,
        profile="commodity",
    ))
    register_experiment(ExperimentDef(
        name="svc_pvc_qed",
        title="Serving: PVC frequency governor x QED batching, "
              "energy-vs-p95 Pareto frontier vs. power_aware "
              "(arXiv 0909.1767)",
        point_fn=pvc_qed_point,
        defaults={
            "config": ["power_aware", "pvc", "qed", "pvc_qed"],
            "sla_headroom": [0.35, 0.7],
            "queries": 40_000,
            "nodes": 16,
            "profile": "commodity",
            "hold_seconds": 0.5,
            "shared_fraction": 0.7,
            "max_batch": 32,
            "pack_backlog_seconds": 0.2,
            "admission_limit_seconds": None,
            "target_utilization": 0.55,
            "epoch_seconds": 30.0,
            "min_nodes": 2,
        },
        aggregate=_pvc_qed_aggregate,
        profile="commodity",
    ))
    register_experiment(ExperimentDef(
        name="svc_etl",
        title="Serving: batch ETL as scheduled tenants — eager vs. "
              "delayed vs. consolidated marginal Joules under "
              "freshness SLAs (§3-§4 consolidation in time)",
        point_fn=etl_point,
        defaults={
            "mode": ["none", "eager", "delayed", "consolidated"],
            "load": [1.0, 1.6],
            "day_seconds": 1800.0,
            "peak_seconds": 900.0,
            "offpeak_load": 0.15,
            "etl_scale": 1.0,
            "freshness_sla_seconds": 1680.0,
            "etl_ready_seconds": None,
            "policy": "power_aware",
            **_SVC_DEFAULTS,
        },
        aggregate=_etl_aggregate,
        profile="commodity",
    ))
    _MEGA_DEFAULTS = {
        "load": 30.0,
        "profile": "commodity",
        "pack_backlog_seconds": 0.2,
        "admission_limit_seconds": None,
        "target_utilization": 0.55,
        "epoch_seconds": 30.0,
        "min_nodes": 2,
    }
    register_experiment(ExperimentDef(
        name="svc_mega",
        title="Serving: fleet-scale dispatch sweep, 10M queries x 256 "
              "nodes on the vectorized array-of-events core",
        point_fn=mega_point,
        defaults={
            "policy": ["round_robin", "least_loaded", "power_aware"],
            "queries": 10_000_000,
            "nodes": 256,
            "engine": "auto",
            **_MEGA_DEFAULTS,
        },
        aggregate=_svc_aggregate,
        profile="commodity",
    ))
    register_experiment(ExperimentDef(
        name="svc_mega_smoke",
        title="Serving: scaled-down svc_mega for CI smoke / "
              "observatory gating (same fleet and load shape)",
        point_fn=mega_point,
        defaults={
            "policy": ["round_robin", "least_loaded", "power_aware"],
            "queries": 200_000,
            "nodes": 256,
            "engine": "auto",
            **_MEGA_DEFAULTS,
        },
        aggregate=_svc_aggregate,
        profile="commodity",
    ))
    register_experiment(ExperimentDef(
        name="svc_mega_calibration",
        title="Serving: reference loop vs. event core on one 1M-query "
              "stream — byte-identity proof and speedup price",
        point_fn=mega_calibration_point,
        defaults={
            "policy": "power_aware",
            "queries": 1_000_000,
            "nodes": 256,
            **_MEGA_DEFAULTS,
        },
        profile="commodity",
    ))
    _CHAOS_DEFAULTS = {
        "policy": "power_aware",
        "profile": "commodity",
        "crash_rate_per_node_hour": 0.8,
        "crash_downtime_seconds": 300.0,
        "throttle_rate_per_node_hour": 0.3,
        "throttle_dvfs_fraction": 0.7,
        "disk_rate_per_node_hour": 0.1,
        "raid_width": 8,
        "timeout_rate_per_node_hour": 0.2,
        "max_attempts": 4,
        "base_backoff_seconds": 0.05,
        "timeout_detect_seconds": 0.5,
        "shed_slack_fraction": 0.5,
        "pack_backlog_seconds": 0.2,
        "target_utilization": 0.55,
        "epoch_seconds": 30.0,
        "min_nodes": 2,
    }
    register_experiment(ExperimentDef(
        name="chaos_smoke",
        title="Chaos: small fault-injection run for CI smoke / "
              "observatory gating (crashes, throttling, disk, timeouts)",
        point_fn=chaos_point,
        defaults={
            "queries": 20_000,
            "nodes": 8,
            "intensity": 1.0,
            **_CHAOS_DEFAULTS,
        },
        aggregate=_chaos_aggregate,
        profile="commodity",
    ))
    register_experiment(ExperimentDef(
        name="chaos_frontier",
        title="Chaos: availability-vs-energy frontier, 500k queries on "
              "16 nodes across fault intensities",
        point_fn=chaos_point,
        defaults={
            "queries": 500_000,
            "nodes": 16,
            "intensity": [0.5, 1.0, 2.0],
            **_CHAOS_DEFAULTS,
        },
        aggregate=_chaos_aggregate,
        profile="commodity",
    ))
    register_experiment(ExperimentDef(
        name="proportionality",
        title="A8: duty-cycle utilization sweep, real vs. ideal "
              "proportional machine",
        point_fn=run_duty_cycle,
        defaults={
            "utilization": [0.0, 0.25, 0.5, 0.75, 1.0],
            "kind": "real",
            "window_seconds": 100.0,
            "period_seconds": 1.0,
            "peak_watts": None,
        },
        profile="commodity",
    ))


_register_builtin_experiments()
