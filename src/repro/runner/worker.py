"""The process-pool work item: simulate one sweep point.

Everything crossing the process boundary is a plain JSON-safe dict —
the same payload shape the cache stores — so fork and spawn start
methods both work and parallel runs are bit-identical to serial ones
(the payload is computed in the worker from the same knobs + seed,
never re-derived in the parent).
"""

from __future__ import annotations

import time
from typing import Any, Mapping

from repro.errors import ReproError
from repro.runner.registry import get_experiment
from repro.runner.reports import encode_report, report_metrics

#: (experiment name, resolved point knobs, point seed)
PointTask = tuple[str, dict[str, Any], int]


class PointExecutionError(ReproError):
    """A point function raised: bad knob values, broken physics, etc.

    Raised ``from`` the original exception, so library callers keep the
    full chained traceback while the CLI's :class:`ReproError` handler
    collapses it to a one-line message (a wrong ``--disks`` value must
    not dump a simulator stack on the terminal).
    """


def execute_point(task: PointTask, trace: bool = False,
                  record: bool = False) -> dict[str, Any]:
    """Run one point and return its cacheable payload.

    With ``trace=True`` the point simulates under a telemetry capture
    and the payload carries the serialized
    :class:`~repro.telemetry.trace.TelemetryTrace` under
    ``"telemetry"`` — a JSON-safe dict, so traces ride the process
    pool and the result cache like any other payload field.  With
    ``record=True`` the point simulates under a flight recorder and
    the payload carries the serialized
    :class:`~repro.flightrec.events.FlightRecording` under
    ``"flightrec"`` the same way.
    """
    experiment, knobs, seed = task
    defn = get_experiment(experiment)
    started = time.perf_counter()
    telemetry = None
    flightrec = None
    try:
        if trace or record:
            import contextlib
            with contextlib.ExitStack() as stack:
                collector = None
                recorder = None
                if trace:
                    # lazy imports: plain workers never touch the
                    # telemetry or flightrec machinery
                    from repro.telemetry import capture
                    collector = stack.enter_context(capture())
                if record:
                    from repro.flightrec import record as start_recording
                    recorder = stack.enter_context(start_recording())
                report = defn.call_point(knobs, seed)
            if collector is not None:
                telemetry = collector.finalize().to_dict()
            if recorder is not None:
                # a point that never enters a serving engine records
                # nothing; the payload still marks the recorded run
                flightrec = (recorder.finalize().to_dict()
                             if recorder.has_run else None)
        else:
            report = defn.call_point(knobs, seed)
    except ReproError:
        raise
    except Exception as exc:
        brief = " ".join(f"{k}={v!r}" for k, v in sorted(knobs.items()))
        raise PointExecutionError(
            f"experiment {experiment!r} failed at point [{brief}] "
            f"(seed {seed}): {type(exc).__name__}: {exc}") from exc
    host_seconds = time.perf_counter() - started
    sim_seconds, joules = report_metrics(report)
    payload = {
        "experiment": experiment,
        "knobs": dict(knobs),
        "seed": seed,
        "report": encode_report(report),
        "sim_seconds": sim_seconds,
        "joules": joules,
        "host_seconds": host_seconds,
    }
    if telemetry is not None:
        payload["telemetry"] = telemetry
    if record:
        payload["flightrec"] = flightrec
    return payload


def execute_indexed(item: tuple[int, PointTask, bool, bool]
                    ) -> tuple[int, dict[str, Any]]:
    """Pool adapter: keep the point's grid index with its payload so
    out-of-order completion can be reassembled deterministically."""
    index, task, trace, record = item
    return index, execute_point(task, trace=trace, record=record)


def payload_matches(payload: Mapping[str, Any], task: PointTask,
                    trace: bool = False, record: bool = False) -> bool:
    """Paranoia check for cache payloads: same point, same seed —
    and, for traced runs, a stored trace (likewise a stored flight
    recording for recorded runs)."""
    experiment, knobs, seed = task
    return (payload.get("experiment") == experiment
            and payload.get("seed") == seed
            and payload.get("knobs") == knobs
            and "report" in payload
            and (not trace or "telemetry" in payload)
            and (not record or "flightrec" in payload))
