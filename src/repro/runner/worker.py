"""The process-pool work item: simulate one sweep point.

Everything crossing the process boundary is a plain JSON-safe dict —
the same payload shape the cache stores — so fork and spawn start
methods both work and parallel runs are bit-identical to serial ones
(the payload is computed in the worker from the same knobs + seed,
never re-derived in the parent).
"""

from __future__ import annotations

import time
from typing import Any, Mapping

from repro.runner.registry import get_experiment
from repro.runner.reports import encode_report, report_metrics

#: (experiment name, resolved point knobs, point seed)
PointTask = tuple[str, dict[str, Any], int]


def execute_point(task: PointTask) -> dict[str, Any]:
    """Run one point and return its cacheable payload."""
    experiment, knobs, seed = task
    defn = get_experiment(experiment)
    started = time.perf_counter()
    report = defn.call_point(knobs, seed)
    host_seconds = time.perf_counter() - started
    sim_seconds, joules = report_metrics(report)
    return {
        "experiment": experiment,
        "knobs": dict(knobs),
        "seed": seed,
        "report": encode_report(report),
        "sim_seconds": sim_seconds,
        "joules": joules,
        "host_seconds": host_seconds,
    }


def execute_indexed(item: tuple[int, PointTask]
                    ) -> tuple[int, dict[str, Any]]:
    """Pool adapter: keep the point's grid index with its payload so
    out-of-order completion can be reassembled deterministically."""
    index, task = item
    return index, execute_point(task)


def payload_matches(payload: Mapping[str, Any], task: PointTask) -> bool:
    """Paranoia check for cache payloads: same point, same seed."""
    experiment, knobs, seed = task
    return (payload.get("experiment") == experiment
            and payload.get("seed") == seed
            and payload.get("knobs") == knobs
            and "report" in payload)
