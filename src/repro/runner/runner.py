"""The parallel experiment runner.

``Runner.run(spec)`` expands the spec's knob grid, skips every point
already present in the on-disk result cache, fans the rest out across
a ``multiprocessing`` pool (``workers=1`` runs inline), and reassembles
the payloads in grid order.  Because each point is simulated from
nothing but its resolved knobs and its deterministic seed, a
``workers=4`` run is byte-identical to a serial one — the pool only
changes host wall-clock, never results.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence, Union

from repro.errors import ReproError
from repro.runner.cache import DEFAULT_CACHE_DIR, ResultCache, point_key
from repro.flightrec.events import FlightRecording
from repro.runner.events import (
    EventSink,
    PointFinished,
    PointRecorded,
    PointStarted,
    PointTraced,
    RunFinished,
    RunStarted,
)
from repro.runner.registry import get_experiment
from repro.runner.reports import decode_report
from repro.runner.spec import ExperimentSpec, canonical_json
from repro.runner.worker import (
    PointTask,
    execute_indexed,
    execute_point,
    payload_matches,
)
from repro.telemetry.trace import TelemetryTrace

CacheLike = Union[ResultCache, str, os.PathLike, bool, None]


@dataclass
class PointResult:
    """One finished sweep point."""

    index: int
    knobs: dict[str, Any]
    seed: int
    report: Any
    sim_seconds: float
    joules: float
    host_seconds: float = 0.0
    cache_hit: bool = False
    telemetry: Optional[TelemetryTrace] = None
    recording: Optional[FlightRecording] = None

    def to_dict(self) -> dict[str, Any]:
        """Deterministic content only — host timing and cache
        provenance stay off the record so parallel, serial, and cached
        runs serialize to the same bytes.  Telemetry traces and flight
        recordings are sim-time-deterministic, so traced/recorded
        points carry theirs."""
        out = {
            "index": self.index,
            "knobs": {k: v for k, v in sorted(self.knobs.items())},
            "seed": self.seed,
            "report": {"type": type(self.report).__name__,
                       "data": self.report.to_dict()},
            "sim_seconds": self.sim_seconds,
            "joules": self.joules,
        }
        if self.telemetry is not None:
            out["telemetry"] = self.telemetry.to_dict()
        if self.recording is not None:
            out["flightrec"] = self.recording.to_dict()
        return out


@dataclass
class RunResult:
    """Everything a finished spec produced, in grid order."""

    spec: ExperimentSpec
    points: list[PointResult] = field(default_factory=list)
    host_seconds: float = 0.0

    @property
    def reports(self) -> list[Any]:
        return [p.report for p in self.points]

    @property
    def cache_hits(self) -> int:
        return sum(1 for p in self.points if p.cache_hit)

    def aggregate(self) -> Any:
        """Fold the points into the experiment's figure-level result
        (e.g. ``Figure1Result``), or a generic
        :class:`~repro.core.profiler.EnergyProfile` when the experiment
        registers no aggregator."""
        defn = get_experiment(self.spec.experiment)
        if defn.aggregate is not None:
            return defn.aggregate(self.points)
        return self.profile()

    def profile(self) -> Any:
        """The sweep as an :class:`~repro.core.profiler.EnergyProfile`
        over the spec's (single) sweep axis."""
        from repro.core.profiler import EnergyProfile, ProfilePoint
        axes = list(self.spec.sweep_axes())
        knob = axes[0] if len(axes) == 1 else None
        profile = EnergyProfile(knob_name=knob or "point")
        for p in self.points:
            profile.points.append(ProfilePoint(
                knob_value=p.knobs[knob] if knob else p.index,
                seconds=p.sim_seconds,
                energy_joules=p.joules))
        return profile

    def rows(self) -> list[tuple]:
        """(index, swept knobs, sim seconds, Joules) summary rows."""
        axes = list(self.spec.sweep_axes())
        return [
            (p.index,
             " ".join(f"{k}={p.knobs[k]}" for k in axes) or "-",
             p.sim_seconds, p.joules, "hit" if p.cache_hit else "run")
            for p in self.points
        ]

    def to_dict(self) -> dict[str, Any]:
        return {
            "spec": self.spec.canonical(),
            "spec_hash": self.spec.spec_hash(),
            "points": [p.to_dict() for p in self.points],
        }

    def to_json(self) -> str:
        return canonical_json(self.to_dict())

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunResult":
        spec = ExperimentSpec.from_dict(data["spec"])
        points = [
            PointResult(
                index=p["index"], knobs=dict(p["knobs"]), seed=p["seed"],
                report=decode_report(p["report"]),
                sim_seconds=p["sim_seconds"], joules=p["joules"],
                telemetry=(TelemetryTrace.from_dict(p["telemetry"])
                           if "telemetry" in p else None),
                recording=(FlightRecording.from_dict(p["flightrec"])
                           if p.get("flightrec") else None))
            for p in data["points"]
        ]
        return cls(spec=spec, points=points)


def _resolve_cache(cache: CacheLike) -> Optional[ResultCache]:
    if cache is None or cache is False:
        return None
    if cache is True:
        return ResultCache(os.environ.get("REPRO_CACHE_DIR",
                                          DEFAULT_CACHE_DIR))
    if isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)


class Runner:
    """Executes :class:`ExperimentSpec` grids, possibly in parallel.

    ``workers`` is the process-pool size (1 = inline, no pool);
    ``cache`` is ``True`` for the default ``.repro-cache/`` store
    (honouring ``$REPRO_CACHE_DIR``), ``False``/``None`` to disable,
    or a path / :class:`ResultCache`; ``on_event`` receives the
    structured progress events from :mod:`repro.runner.events`;
    ``trace=True`` runs every point under a telemetry capture —
    results gain ``PointResult.telemetry`` and each point emits a
    :class:`~repro.runner.events.PointTraced` event.  ``record=True``
    runs every point under a fleet flight recorder the same way —
    results gain ``PointResult.recording`` and each recorded point
    emits a :class:`~repro.runner.events.PointRecorded` event.
    Tracing and recording are runtime options, not part of the spec:
    traced/recorded and plain runs of the same spec produce identical
    reports (and cache separately).
    """

    def __init__(self, workers: int = 1, cache: CacheLike = True,
                 on_event: Optional[EventSink] = None,
                 trace: bool = False, record: bool = False):
        if workers < 1:
            raise ReproError("workers must be >= 1")
        self.workers = workers
        self.cache = _resolve_cache(cache)
        self.on_event = on_event
        self.trace = trace
        self.record = record

    # -- internals ---------------------------------------------------

    def _emit(self, event: Any) -> None:
        if self.on_event is not None:
            self.on_event(event)

    def _tasks(self, spec: ExperimentSpec
               ) -> list[tuple[PointTask, str]]:
        tasks = []
        for point in spec.points():
            task: PointTask = (spec.experiment, point,
                               spec.point_seed(point))
            tasks.append((task, point_key(*task, trace=self.trace,
                                          record=self.record)))
        return tasks

    def _finish(self, spec: ExperimentSpec, index: int, total: int,
                payload: Mapping[str, Any], cache_hit: bool,
                host_seconds: float) -> PointResult:
        raw_trace = payload.get("telemetry")
        telemetry = (TelemetryTrace.from_dict(raw_trace)
                     if raw_trace is not None else None)
        raw_recording = payload.get("flightrec")
        recording = (FlightRecording.from_dict(raw_recording)
                     if raw_recording else None)
        result = PointResult(
            index=index, knobs=dict(payload["knobs"]),
            seed=payload["seed"],
            report=decode_report(payload["report"]),
            sim_seconds=payload["sim_seconds"],
            joules=payload["joules"],
            host_seconds=host_seconds, cache_hit=cache_hit,
            telemetry=telemetry, recording=recording)
        self._emit(PointFinished(
            index=index, total_points=total, knobs=result.knobs,
            sim_seconds=result.sim_seconds, joules=result.joules,
            host_seconds=host_seconds, cache_hit=cache_hit))
        if telemetry is not None:
            self._emit(PointTraced(
                index=index, total_points=total, knobs=result.knobs,
                trace=telemetry, cache_hit=cache_hit))
        if recording is not None:
            self._emit(PointRecorded(
                index=index, total_points=total, knobs=result.knobs,
                recording=recording, cache_hit=cache_hit))
        return result

    # -- the entry point ---------------------------------------------

    def run(self, spec: ExperimentSpec) -> RunResult:
        # fail fast on unknown names, before any point runs
        get_experiment(spec.experiment).validate_knobs(spec.knobs)
        started = time.perf_counter()
        tasks = self._tasks(spec)
        total = len(tasks)
        self._emit(RunStarted(experiment=spec.experiment,
                              spec_hash=spec.spec_hash(),
                              total_points=total, workers=self.workers))

        results: dict[int, PointResult] = {}
        pending: list[tuple[int, PointTask, str]] = []
        for index, (task, key) in enumerate(tasks):
            payload = self.cache.get(key) if self.cache else None
            if payload is not None and payload_matches(
                    payload, task, trace=self.trace, record=self.record):
                results[index] = self._finish(
                    spec, index, total, payload, cache_hit=True,
                    host_seconds=0.0)
            else:
                pending.append((index, task, key))

        if pending:
            if self.workers > 1 and len(pending) > 1:
                self._run_pool(spec, pending, total, results)
            else:
                self._run_serial(spec, pending, total, results)

        run = RunResult(
            spec=spec,
            points=[results[i] for i in range(total)],
            host_seconds=time.perf_counter() - started)
        self._emit(RunFinished(experiment=spec.experiment,
                               total_points=total,
                               cache_hits=run.cache_hits,
                               host_seconds=run.host_seconds))
        return run

    def _run_serial(self, spec: ExperimentSpec,
                    pending: Sequence[tuple[int, PointTask, str]],
                    total: int, results: dict[int, PointResult]) -> None:
        for index, task, key in pending:
            self._emit(PointStarted(index=index, total_points=total,
                                    knobs=task[1]))
            payload = execute_point(task, trace=self.trace,
                                    record=self.record)
            if self.cache:
                self.cache.put(key, payload)
            results[index] = self._finish(
                spec, index, total, payload, cache_hit=False,
                host_seconds=payload["host_seconds"])

    def _run_pool(self, spec: ExperimentSpec,
                  pending: Sequence[tuple[int, PointTask, str]],
                  total: int, results: dict[int, PointResult]) -> None:
        keys = {index: key for index, _, key in pending}
        items = [(index, task, self.trace, self.record)
                 for index, task, _ in pending]
        workers = min(self.workers, len(items))
        for index, task, _ in pending:
            self._emit(PointStarted(index=index, total_points=total,
                                    knobs=task[1]))
        ctx = multiprocessing.get_context()
        with ctx.Pool(processes=workers) as pool:
            for index, payload in pool.imap_unordered(execute_indexed,
                                                      items):
                if self.cache:
                    self.cache.put(keys[index], payload)
                results[index] = self._finish(
                    spec, index, total, payload, cache_hit=False,
                    host_seconds=payload["host_seconds"])
