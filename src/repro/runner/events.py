"""Structured progress events streamed while a spec runs.

The runner calls its ``on_event`` sink with these as the run unfolds;
the CLI's default sink pretty-prints them to stderr, and tests can
collect them to assert scheduling behaviour.  Events are advisory —
a raising sink aborts the run, so sinks should be cheap and robust.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, TextIO


@dataclass(frozen=True)
class RunStarted:
    experiment: str
    spec_hash: str
    total_points: int
    workers: int


@dataclass(frozen=True)
class PointStarted:
    index: int
    total_points: int
    knobs: Mapping[str, Any]


@dataclass(frozen=True)
class PointFinished:
    index: int
    total_points: int
    knobs: Mapping[str, Any]
    sim_seconds: float
    joules: float
    host_seconds: float
    cache_hit: bool


@dataclass(frozen=True)
class PointTraced:
    """Follows ``PointFinished`` for every traced point (cache hits
    included); ``trace`` is the decoded
    :class:`~repro.telemetry.trace.TelemetryTrace`."""

    index: int
    total_points: int
    knobs: Mapping[str, Any]
    trace: Any
    cache_hit: bool


@dataclass(frozen=True)
class PointRecorded:
    """Follows ``PointFinished`` for every flight-recorded point
    (cache hits included); ``recording`` is the decoded
    :class:`~repro.flightrec.events.FlightRecording`."""

    index: int
    total_points: int
    knobs: Mapping[str, Any]
    recording: Any
    cache_hit: bool


@dataclass(frozen=True)
class RunFinished:
    experiment: str
    total_points: int
    cache_hits: int
    host_seconds: float


EventSink = Callable[[Any], None]


def _brief_knobs(knobs: Mapping[str, Any], limit: int = 4) -> str:
    items = [f"{k}={v}" for k, v in sorted(knobs.items())]
    if len(items) > limit:
        items = items[:limit] + ["..."]
    return " ".join(items)


@dataclass
class EventPrinter:
    """The CLI's default sink: one line per event on ``stream``."""

    stream: TextIO = field(default_factory=lambda: __import__("sys").stderr)
    verbose: bool = False

    def __call__(self, event: Any) -> None:
        out = self.stream
        if isinstance(event, RunStarted):
            print(f"run {event.experiment}: {event.total_points} point(s)"
                  f" on {event.workers} worker(s)"
                  f" [spec {event.spec_hash[:12]}]", file=out)
        elif isinstance(event, PointStarted):
            if self.verbose:
                print(f"  [{event.index + 1}/{event.total_points}] "
                      f"start  {_brief_knobs(event.knobs)}", file=out)
        elif isinstance(event, PointFinished):
            tag = "cache " if event.cache_hit else ""
            print(f"  [{event.index + 1}/{event.total_points}] {tag}done"
                  f"  {_brief_knobs(event.knobs)}"
                  f"  sim={event.sim_seconds:.3g}s"
                  f"  E={event.joules:.4g}J"
                  f"  host={event.host_seconds:.2f}s", file=out)
        elif isinstance(event, PointTraced):
            if self.verbose:
                totals = event.trace.device_totals()
                brief = " ".join(f"{k}={v:.4g}J"
                                 for k, v in sorted(totals.items()))
                print(f"  [{event.index + 1}/{event.total_points}] trace"
                      f"  {brief}", file=out)
        elif isinstance(event, PointRecorded):
            if self.verbose:
                rec = event.recording
                print(f"  [{event.index + 1}/{event.total_points}] rec"
                      f"  {rec.n_nodes} node(s)"
                      f"  {rec.n_queries} query(ies)"
                      f"  {len(rec.events)} event(s)", file=out)
        elif isinstance(event, RunFinished):
            print(f"run {event.experiment}: {event.total_points} point(s)"
                  f" in {event.host_seconds:.2f}s host time"
                  f" ({event.cache_hits} cache hit(s))", file=out)
