"""repro.runner: the unified experiment-execution subsystem.

One surface replaces the repo's historical per-figure entry points:

* :class:`ExperimentSpec` — a declarative, hashable description of an
  experiment + knob grid + seed (list-valued knobs are sweep axes);
* :class:`Runner` — executes a spec's points across a
  ``multiprocessing`` pool with deterministic per-point seeds and an
  on-disk result cache, streaming structured progress events;
* :class:`RunResult` / :class:`PointResult` — grid-ordered results with
  a byte-stable ``to_dict()`` and figure-level ``aggregate()``;
* the registry (:func:`register_experiment`, :func:`get_experiment`,
  :func:`list_experiments`, :func:`default_spec`) for adding new
  experiments;
* ``python -m repro.runner`` — the operational CLI (``run``, ``trace``,
  ``list``, ``cache stats``, ``cache clear``).
"""

from repro.runner.cache import (
    DEFAULT_CACHE_DIR,
    CacheStats,
    ResultCache,
    point_key,
)
from repro.runner.events import (
    EventPrinter,
    PointFinished,
    PointStarted,
    PointTraced,
    RunFinished,
    RunStarted,
)
from repro.runner.registry import (
    ExperimentDef,
    UnknownExperimentError,
    UnknownKnobError,
    default_spec,
    get_experiment,
    list_experiments,
    register_experiment,
)
from repro.runner.reports import (
    Report,
    decode_report,
    encode_report,
    register_report,
    report_metrics,
)
from repro.runner.runner import PointResult, Runner, RunResult
from repro.runner.spec import DEFAULT_SEED, ExperimentSpec, SpecError
from repro.runner.worker import PointExecutionError

__all__ = [
    "DEFAULT_CACHE_DIR",
    "DEFAULT_SEED",
    "CacheStats",
    "EventPrinter",
    "ExperimentDef",
    "ExperimentSpec",
    "PointExecutionError",
    "PointFinished",
    "PointResult",
    "PointStarted",
    "PointTraced",
    "Report",
    "ResultCache",
    "RunFinished",
    "RunResult",
    "RunStarted",
    "Runner",
    "SpecError",
    "UnknownExperimentError",
    "UnknownKnobError",
    "decode_report",
    "default_spec",
    "encode_report",
    "get_experiment",
    "list_experiments",
    "point_key",
    "register_experiment",
    "register_report",
    "report_metrics",
]
